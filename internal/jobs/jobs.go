// Package jobs is the serving layer's job manager: submitted CBS work
// (single-energy solves, energy sweeps) runs on a bounded worker pool
// behind a fixed-depth queue. The two bounds are the backpressure policy:
// Workers caps concurrent solves at what the machine can actually run,
// QueueDepth caps accepted-but-unstarted work at what a client should be
// allowed to park, and a full queue rejects the submission with a typed
// error (ErrQueueFull — an HTTP 429 at the daemon layer) instead of
// blocking the accept loop or growing without bound.
//
// Lifecycle: queued → running → {done, failed, canceled}. Cancel kills a
// queued job immediately and cancels a running job's context — the sweep
// engine checkpoints completed energies on cancellation, so a canceled
// sweep leaves a resumable journal. Drain is the SIGTERM path: stop
// intake, cancel everything still queued, give in-flight jobs a grace
// period to finish, then cancel them too and wait — every task sees a
// context cancellation, never a hard kill.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"cbs/internal/chaos"
	"cbs/internal/core"
	"cbs/internal/rescache"
	"cbs/internal/sweep"
)

// Typed sentinels of the job layer.
var (
	// ErrQueueFull rejects a submission when the fixed-depth queue is at
	// capacity: the server is saturated and the client should back off
	// and retry (HTTP 429).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrDraining rejects a submission during shutdown (HTTP 503).
	ErrDraining = errors.New("jobs: manager is draining")
	// ErrNotFound is an unknown job ID.
	ErrNotFound = errors.New("jobs: no such job")
)

// Kind is the type of work a job carries.
type Kind string

const (
	KindSolve Kind = "solve"
	KindSweep Kind = "sweep"
)

// State is one rung of the job lifecycle.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether s is an end state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Outcome is what a finished task produced: exactly one of Result (solve)
// or Report (sweep), plus how the result cache was involved.
type Outcome struct {
	Result *core.Result
	Report *sweep.Report
	// CacheOutcome is the rescache path a solve took ("" for sweeps and
	// unfinished jobs).
	CacheOutcome rescache.Outcome
}

// Task is the unit of work a job runs. The context dies on job
// cancellation and manager drain; progress may be called after every
// completed step (energy) and must be safe for concurrent use.
type Task func(ctx context.Context, progress func(done, total int)) (Outcome, error)

// Snapshot is the externally visible state of one job.
type Snapshot struct {
	ID        string
	Kind      Kind
	State     State
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	// Done/Total are task progress (completed energies of a sweep; 0/0
	// when the task reports none).
	Done, Total int
	Outcome     Outcome
	Err         error
}

// Metrics is a snapshot of the manager's counters for /metrics.
type Metrics struct {
	Submitted  int64 // accepted submissions
	Rejected   int64 // ErrQueueFull rejections
	Completed  int64 // jobs that ended done
	Failed     int64 // jobs that ended failed
	Canceled   int64 // jobs that ended canceled
	QueueDepth int   // jobs accepted but not yet picked up
	InFlight   int   // jobs currently running
	// BusyNanos accumulates wall time spent inside tasks (divide by
	// Completed+Failed+Canceled-with-start for mean job latency).
	BusyNanos int64
}

// job is the manager's internal record.
type job struct {
	id     string
	seq    int
	kind   Kind
	task   Task
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     State
	submitted time.Time
	started   time.Time
	finished  time.Time
	done      int
	total     int
	outcome   Outcome
	err       error
}

// snapshot copies the job under its lock.
func (j *job) snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Snapshot{
		ID: j.id, Kind: j.kind, State: j.state,
		Submitted: j.submitted, Started: j.started, Finished: j.finished,
		Done: j.done, Total: j.total,
		Outcome: j.outcome, Err: j.err,
	}
}

// Config parameterizes the manager.
type Config struct {
	// Workers is the number of concurrent jobs (default 1).
	Workers int
	// QueueDepth is the accepted-but-unstarted bound (default 16).
	QueueDepth int
	// Chaos optionally injects job-pickup faults (nil in production).
	Chaos *chaos.Injector
	// Clock substitutes time.Now in tests (nil uses time.Now).
	Clock func() time.Time
}

// Manager runs jobs on its worker pool. Construct with New; Drain ends it.
type Manager struct {
	cfg   Config
	queue chan *job
	wg    sync.WaitGroup

	baseCtx    context.Context
	cancelBase context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*job
	seq      int
	draining bool
	metrics  Metrics
}

// New starts a manager with cfg.Workers workers.
func New(cfg Config) *Manager {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 16
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	//cbs:ctxescape manager-owned base context: job lifetimes are detached from the constructing caller
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		queue:      make(chan *job, cfg.QueueDepth),
		baseCtx:    ctx,
		cancelBase: cancel,
		jobs:       make(map[string]*job),
	}
	for w := 0; w < cfg.Workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Submit queues a task and returns its job ID. A full queue returns
// ErrQueueFull without accepting the job; a draining manager returns
// ErrDraining.
func (m *Manager) Submit(kind Kind, task Task) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return "", ErrDraining
	}
	m.seq++
	jctx, jcancel := context.WithCancel(m.baseCtx)
	j := &job{
		id:        fmt.Sprintf("j%06d", m.seq),
		seq:       m.seq,
		kind:      kind,
		task:      task,
		ctx:       jctx,
		cancel:    jcancel,
		state:     StateQueued,
		submitted: m.cfg.Clock(),
	}
	select {
	case m.queue <- j:
	default:
		jcancel()
		m.seq-- // the submission was never accepted
		m.metrics.Rejected++
		return "", fmt.Errorf("%w: %d jobs queued, %d running", ErrQueueFull, len(m.queue), m.metrics.InFlight)
	}
	m.jobs[j.id] = j
	m.metrics.Submitted++
	return j.id, nil
}

// Get returns the snapshot of a job.
func (m *Manager) Get(id string) (Snapshot, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Snapshot{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return j.snapshot(), nil
}

// Cancel stops a job: a queued job is marked canceled and never runs, a
// running job's context is canceled (the task decides how fast to wind
// down; sweeps checkpoint first). Canceling a finished job is a no-op.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	j.mu.Lock()
	if j.state == StateQueued {
		j.state = StateCanceled
		j.err = context.Canceled
		j.finished = m.cfg.Clock()
		j.mu.Unlock()
		m.mu.Lock()
		m.metrics.Canceled++
		m.mu.Unlock()
		j.cancel()
		return nil
	}
	j.mu.Unlock()
	j.cancel()
	return nil
}

// Metrics returns a counter snapshot.
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	mt := m.metrics
	mt.QueueDepth = len(m.queue)
	return mt
}

// Draining reports whether the manager has begun shutdown.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Drain shuts the manager down: intake stops (Submit returns ErrDraining),
// queued jobs are canceled without running, and in-flight jobs get until
// ctx expires to finish on their own before their contexts are canceled
// too. Drain always waits for the workers to exit — when it returns, no
// task is running and every journal a canceled sweep flushes is on disk.
// The returned error is ctx.Err() if the grace period expired (in-flight
// work was force-canceled), nil if everything finished in time.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.wg.Wait()
		return nil
	}
	m.draining = true
	// Cancel every queued job under the lock: Submit can no longer add,
	// and workers skip jobs whose state is already terminal.
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.state == StateQueued {
			j.state = StateCanceled
			j.err = ErrDraining
			j.finished = m.cfg.Clock()
			m.metrics.Canceled++
			j.cancel()
		}
		j.mu.Unlock()
	}
	close(m.queue)
	m.mu.Unlock()

	workersDone := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(workersDone)
	}()
	var forced error
	select {
	case <-workersDone:
	case <-ctx.Done():
		// Grace expired: cancel in-flight tasks and wait for real. Sweeps
		// checkpoint completed energies on the way out.
		forced = ctx.Err()
		m.cancelBase()
		<-workersDone
	}
	m.cancelBase()
	return forced
}

// worker drains the queue.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.run(j)
	}
}

// run executes one job through its lifecycle.
func (m *Manager) run(j *job) {
	j.mu.Lock()
	if j.state != StateQueued { // canceled while queued
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = m.cfg.Clock()
	j.mu.Unlock()
	m.mu.Lock()
	m.metrics.InFlight++
	m.mu.Unlock()

	var (
		out Outcome
		err error
	)
	//cbs:chaossite jobs.run
	if err = m.cfg.Chaos.JobFault(j.seq); err == nil {
		out, err = j.task(j.ctx, func(done, total int) {
			j.mu.Lock()
			j.done, j.total = done, total
			j.mu.Unlock()
		})
	}

	finished := m.cfg.Clock()
	j.mu.Lock()
	j.finished = finished
	j.outcome = out
	j.err = err
	switch {
	case err == nil:
		j.state = StateDone
	case errors.Is(err, context.Canceled) || errors.Is(err, ErrDraining):
		j.state = StateCanceled
	default:
		j.state = StateFailed
	}
	state := j.state
	busy := finished.Sub(j.started)
	j.mu.Unlock()

	m.mu.Lock()
	m.metrics.InFlight--
	m.metrics.BusyNanos += int64(busy)
	switch state {
	case StateDone:
		m.metrics.Completed++
	case StateCanceled:
		m.metrics.Canceled++
	default:
		m.metrics.Failed++
	}
	m.mu.Unlock()
}
