// Package jobs is the serving layer's job manager: submitted CBS work
// (single-energy solves, energy sweeps, band batches) runs on a bounded
// worker pool behind fixed-depth per-client queues. The two bounds are
// the backpressure policy: Workers caps concurrent solves at what the
// machine can actually run, QueueDepth caps accepted-but-unstarted work
// at what clients should be allowed to park, and a full queue rejects the
// submission with a typed error (ErrQueueFull — an HTTP 429 at the
// daemon layer) instead of blocking the accept loop or growing without
// bound. Dispatch is fair (sched.go): weighted round-robin across client
// IDs with a work-conserving per-client in-flight cap, so one chatty
// client cannot starve the rest.
//
// Lifecycle: queued → running → {done, failed, canceled}. Cancel kills a
// queued job immediately and cancels a running job's context — the sweep
// engine checkpoints completed energies on cancellation, so a canceled
// sweep leaves a resumable journal. Drain is the SIGTERM path: stop
// intake, cancel everything still queued, give in-flight jobs a grace
// period to finish, then cancel them too and wait — every task sees a
// context cancellation, never a hard kill.
//
// Persistence (store.go): with a Store configured, every lifecycle
// transition and progress tick is journaled to a crash-safe job log. A
// restarted manager replays the log and re-adopts unfinished jobs
// (Adopt): their tasks are rebuilt from the journaled request spec and
// re-enqueued under their original IDs, or typed-failed with
// ErrLostToRestart when the spec no longer rebuilds. Event sequence
// numbers survive the restart, so an SSE client reconnecting with
// Last-Event-ID resumes gaplessly (events.go).
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cbs/internal/chaos"
	"cbs/internal/core"
	"cbs/internal/negf"
	"cbs/internal/rescache"
	"cbs/internal/sweep"
)

// Typed sentinels of the job layer.
var (
	// ErrQueueFull rejects a submission when the fixed-depth queue is at
	// capacity: the server is saturated and the client should back off
	// and retry (HTTP 429).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrDraining rejects a submission during shutdown (HTTP 503).
	ErrDraining = errors.New("jobs: manager is draining")
	// ErrNotFound is an unknown job ID.
	ErrNotFound = errors.New("jobs: no such job")
)

// Kind is the type of work a job carries.
type Kind string

const (
	KindSolve     Kind = "solve"
	KindSweep     Kind = "sweep"
	KindBands     Kind = "bands"
	KindTransport Kind = "transport"
)

// State is one rung of the job lifecycle.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether s is an end state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Outcome is what a finished task produced: exactly one of Result
// (solve), Report (sweep/bands) or Curve (transport), plus how the result
// cache was involved.
type Outcome struct {
	Result *core.Result
	Report *sweep.Report
	Curve  *negf.Curve
	// CacheOutcome is the rescache path a solve took ("" for sweeps and
	// unfinished jobs).
	CacheOutcome rescache.Outcome
}

// Task is the unit of work a job runs. The context dies on job
// cancellation and manager drain; progress may be called after every
// completed step (energy) and must be safe for concurrent use.
type Task func(ctx context.Context, progress func(done, total int)) (Outcome, error)

// Submission is one unit of work offered to Submit: the task plus the
// identity the manager journals (Spec must be enough for the caller's
// RebuildFunc to reconstruct the task after a restart) and schedules by
// (Client, Weight).
type Submission struct {
	Kind Kind
	// Client is the fairness key ("" schedules under a shared default).
	Client string
	// Weight is the WRR share, clamped to 1..8 (0 means 1).
	Weight int
	// Fingerprint ties the job to its sweep journal / cache identity.
	Fingerprint string
	// Spec is the caller-defined request payload journaled with the job.
	Spec json.RawMessage
	Task Task
}

// RebuildFunc reconstructs a replayed job's task from its journaled
// submission. Returning an error (or a nil task) fails the job with
// ErrLostToRestart instead of re-running it.
type RebuildFunc func(rj ReplayedJob) (Task, error)

// Snapshot is the externally visible state of one job.
type Snapshot struct {
	ID          string
	Kind        Kind
	Client      string
	Weight      int
	Fingerprint string
	Spec        json.RawMessage
	State       State
	// Restored marks a job replayed from the log in a terminal state: its
	// lifecycle is authoritative but its result payload did not survive
	// the restart (re-run the request; sweep journals make it cheap).
	Restored  bool
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	// Done/Total are task progress (completed energies of a sweep; 0/0
	// when the task reports none).
	Done, Total int
	Outcome     Outcome
	Err         error
}

// Metrics is a snapshot of the manager's counters for /metrics.
type Metrics struct {
	Submitted  int64 // accepted submissions
	Rejected   int64 // ErrQueueFull rejections
	Completed  int64 // jobs that ended done
	Failed     int64 // jobs that ended failed
	Canceled   int64 // jobs that ended canceled
	Readopted  int64 // replayed jobs re-enqueued after restart
	Restored   int64 // replayed jobs restored in a terminal state
	LogErrors  int64 // best-effort job-log appends that failed
	QueueDepth int   // jobs accepted but not yet picked up
	InFlight   int   // jobs currently running
	// BusyNanos accumulates wall time spent inside tasks (divide by
	// Completed+Failed+Canceled-with-start for mean job latency).
	BusyNanos int64
}

// job is the manager's internal record.
type job struct {
	id          string
	seq         int
	kind        Kind
	client      string
	weight      int
	fingerprint string
	spec        json.RawMessage
	restored    bool
	task        Task
	ctx         context.Context
	cancel      context.CancelFunc
	events      *eventBuf

	mu        sync.Mutex
	state     State
	submitted time.Time
	started   time.Time
	finished  time.Time
	done      int
	total     int
	outcome   Outcome
	err       error
}

// snapshot copies the job under its lock.
func (j *job) snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Snapshot{
		ID: j.id, Kind: j.kind, State: j.state,
		Client: j.client, Weight: j.weight,
		Fingerprint: j.fingerprint, Spec: j.spec, Restored: j.restored,
		Submitted: j.submitted, Started: j.started, Finished: j.finished,
		Done: j.done, Total: j.total,
		Outcome: j.outcome, Err: j.err,
	}
}

// Config parameterizes the manager.
type Config struct {
	// Workers is the number of concurrent jobs (default 1).
	Workers int
	// QueueDepth is the accepted-but-unstarted bound (default 16).
	QueueDepth int
	// PerClientInFlight caps one client's running jobs while other
	// clients have queued work (work-conserving; default caps a client
	// at half the pool, minimum 1).
	PerClientInFlight int
	// Store persists every job transition (nil runs in-memory only).
	Store *Store
	// DrainGrace bounds Drain when its context has no deadline of its
	// own (0 waits indefinitely).
	DrainGrace time.Duration
	// Chaos optionally injects job-pickup faults (nil in production).
	Chaos *chaos.Injector
	// Clock substitutes time.Now in tests (nil uses time.Now).
	Clock func() time.Time
}

// Manager runs jobs on its worker pool. Construct with New; Drain ends it.
type Manager struct {
	cfg    Config
	wg     sync.WaitGroup
	killed atomic.Bool

	baseCtx    context.Context
	cancelBase context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond
	sched    *sched
	jobs     map[string]*job
	seq      int
	draining bool
	closed   bool
	metrics  Metrics
}

// New starts a manager with cfg.Workers workers. With a Store configured,
// call Adopt before accepting traffic so replayed jobs keep their IDs.
func New(cfg Config) *Manager {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 16
	}
	if cfg.PerClientInFlight < 1 {
		cfg.PerClientInFlight = (cfg.Workers + 1) / 2
		if cfg.PerClientInFlight < 1 {
			cfg.PerClientInFlight = 1
		}
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	//cbs:ctxescape manager-owned base context: job lifetimes are detached from the constructing caller
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		sched:      newSched(cfg.PerClientInFlight),
		baseCtx:    ctx,
		cancelBase: cancel,
		jobs:       make(map[string]*job),
	}
	m.cond = sync.NewCond(&m.mu)
	for w := 0; w < cfg.Workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// journal appends one record to the job log, if any. After Kill (the
// crash model) nothing reaches disk — exactly like the SIGKILL it stands
// in for.
func (m *Manager) journal(rec logRecord) error {
	if m.killed.Load() {
		return nil
	}
	return m.cfg.Store.append(rec)
}

// emit journals an event best-effort and publishes it to watchers. A
// failed append is counted (LogErrors) but does not stop the job: a lost
// running/progress/terminal record replays as an earlier state, and
// re-adoption plus the sweep journal make the re-run cheap.
func (m *Manager) emit(j *job, rec logRecord, ev Event) {
	if err := m.journal(rec); err != nil {
		m.mu.Lock()
		m.metrics.LogErrors++
		m.mu.Unlock()
	}
	j.events.publish(ev)
}

// Submit queues a task and returns its job ID. A full queue returns
// ErrQueueFull without accepting the job; a draining manager returns
// ErrDraining; a job whose "queued" record cannot be made durable is
// rejected with ErrJobLog — an accepted job is always recoverable.
func (m *Manager) Submit(sub Submission) (string, error) {
	if sub.Task == nil {
		return "", errors.New("jobs: submission without a task")
	}
	if sub.Kind == "" {
		sub.Kind = KindSolve
	}
	if sub.Client == "" {
		sub.Client = "default"
	}
	if sub.Weight < 1 {
		sub.Weight = 1
	}
	if sub.Weight > 8 {
		sub.Weight = 8
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return "", ErrDraining
	}
	if m.sched.depth >= m.cfg.QueueDepth {
		m.metrics.Rejected++
		return "", fmt.Errorf("%w: %d jobs queued, %d running", ErrQueueFull, m.sched.depth, m.metrics.InFlight)
	}
	m.seq++
	jctx, jcancel := context.WithCancel(m.baseCtx)
	j := &job{
		id:          fmt.Sprintf("j%06d", m.seq),
		seq:         m.seq,
		kind:        sub.Kind,
		client:      sub.Client,
		weight:      sub.Weight,
		fingerprint: sub.Fingerprint,
		spec:        sub.Spec,
		task:        sub.Task,
		ctx:         jctx,
		cancel:      jcancel,
		events:      newEventBuf(),
		state:       StateQueued,
		submitted:   m.cfg.Clock(),
	}
	// The queued record is the one append that must succeed: it is the
	// only durable proof the job exists, so a failure rejects the
	// submission instead of accepting work a restart would silently lose.
	seq := j.events.next()
	if err := m.journal(logRecord{
		Job: j.id, Seq: seq, Ev: evState, State: StateQueued,
		Kind: j.kind, Client: j.client, Weight: j.weight,
		Fingerprint: j.fingerprint, Spec: j.spec,
		Unix: j.submitted.UnixNano(),
	}); err != nil {
		jcancel()
		m.seq-- // the submission was never accepted
		m.metrics.Rejected++
		return "", err
	}
	j.events.publish(Event{Seq: seq, Ev: evState, State: StateQueued})
	m.jobs[j.id] = j
	m.sched.push(j)
	m.metrics.Submitted++
	m.cond.Signal()
	return j.id, nil
}

// Adopt replays the jobs recovered from the store into the manager:
// terminal jobs are restored as queryable snapshots, unfinished jobs are
// rebuilt and re-enqueued under their original IDs, and jobs that cannot
// be rebuilt fail with ErrLostToRestart instead of vanishing. Call once,
// after New and before accepting traffic. Returns (requeued, restored,
// failed) counts.
func (m *Manager) Adopt(replayed []ReplayedJob, rebuild RebuildFunc) (requeued, restored, failed int) {
	for _, rj := range replayed {
		switch m.adoptOne(rj, rebuild) {
		case adoptRequeued:
			requeued++
		case adoptRestored:
			restored++
		case adoptFailed:
			failed++
		}
	}
	return requeued, restored, failed
}

// adoptOne's outcomes.
const (
	adoptSkipped = iota // duplicate ID: first record wins
	adoptRequeued
	adoptRestored
	adoptFailed
)

// adoptOne folds one replayed job into the manager.
func (m *Manager) adoptOne(rj ReplayedJob, rebuild RebuildFunc) int {
	m.mu.Lock()
	if _, dup := m.jobs[rj.ID]; dup {
		m.mu.Unlock()
		return adoptSkipped
	}
	if n := replayedSeq(rj.ID); n > m.seq {
		m.seq = n // new submissions must number past every replayed ID
	}
	m.mu.Unlock()

	j := &job{
		id:          rj.ID,
		seq:         replayedSeq(rj.ID),
		kind:        rj.Kind,
		client:      rj.Client,
		weight:      rj.Weight,
		fingerprint: rj.Fingerprint,
		spec:        rj.Spec,
		events:      newEventBuf(),
		state:       rj.State,
		submitted:   rj.Submitted,
		started:     rj.Started,
		finished:    rj.Finished,
		done:        rj.Done,
		total:       rj.Total,
	}
	if j.client == "" {
		j.client = "default"
	}
	if j.weight < 1 {
		j.weight = 1
	}
	j.events.seed(rj.Events)

	if rj.State.Terminal() {
		// The lifecycle survived; the result payload did not. The job
		// stays resolvable (GET reports its terminal state) and Restored
		// tells the client to resubmit if it wants the numbers — the
		// sweep journal turns that re-run into a replay.
		j.restored = true
		if rj.Err != "" {
			j.err = errors.New(rj.Err)
		}
		m.register(j)
		m.mu.Lock()
		m.metrics.Restored++
		m.mu.Unlock()
		return adoptRestored
	}

	// Unfinished pre-crash job: rebuild its task from the journaled spec
	// and re-enqueue it. Any failure here must still resolve the job —
	// a client polling its pre-crash ID gets a typed terminal state, not
	// a 404.
	var task Task
	//cbs:chaossite jobs.adopt
	err := m.cfg.Chaos.AdoptFault(j.seq)
	if err == nil {
		if rebuild == nil {
			err = errors.New("no rebuild function")
		} else {
			task, err = rebuild(rj)
			if err == nil && task == nil {
				err = fmt.Errorf("no task for kind %s", j.kind)
			}
		}
	}
	if err != nil {
		j.state = StateFailed
		j.err = fmt.Errorf("%w: %w", ErrLostToRestart, err)
		j.finished = m.cfg.Clock()
		m.register(j)
		m.mu.Lock()
		m.metrics.Failed++
		m.mu.Unlock()
		seq := j.events.next()
		m.emit(j, logRecord{Job: j.id, Seq: seq, Ev: evState, State: StateFailed, Err: j.err.Error(), Unix: j.finished.UnixNano()},
			Event{Seq: seq, Ev: evState, State: StateFailed, Err: j.err.Error(), Final: true})
		return adoptFailed
	}

	j.task = task
	j.ctx, j.cancel = context.WithCancel(m.baseCtx)
	j.state = StateQueued
	// Journal the re-adoption (with full identity, like a fresh submit)
	// before a worker can touch the job: after another crash the job is
	// still whole even if earlier records were lost to a torn tail.
	seq := j.events.next()
	m.emit(j, logRecord{
		Job: j.id, Seq: seq, Ev: evState, State: StateQueued,
		Kind: j.kind, Client: j.client, Weight: j.weight,
		Fingerprint: j.fingerprint, Spec: j.spec,
		Unix: m.cfg.Clock().UnixNano(),
	}, Event{Seq: seq, Ev: evState, State: StateQueued})
	m.register(j)
	m.mu.Lock()
	m.metrics.Readopted++
	m.sched.push(j)
	m.cond.Signal()
	m.mu.Unlock()
	return adoptRequeued
}

// register adds an adopted job to the ID map.
func (m *Manager) register(j *job) {
	m.mu.Lock()
	m.jobs[j.id] = j
	m.mu.Unlock()
}

// Get returns the snapshot of a job.
func (m *Manager) Get(id string) (Snapshot, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Snapshot{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return j.snapshot(), nil
}

// Watch opens the job's event stream: every buffered event with sequence
// number greater than afterSeq (0 replays everything), plus — while the
// job is live — a channel of subsequent events and a cancel function. For
// a finished job the channel is nil. A watcher that falls subBuffer
// events behind is disconnected (channel closes before a Final event) and
// should re-Watch from its last seen sequence number.
func (m *Manager) Watch(id string, afterSeq int64) ([]Event, <-chan Event, func(), error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, nil, nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	past, ch, cancel := j.events.watch(afterSeq)
	return past, ch, cancel, nil
}

// Cancel stops a job: a queued job is marked canceled and never runs, a
// running job's context is canceled (the task decides how fast to wind
// down; sweeps checkpoint first). Canceling a finished job is a no-op.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	j.mu.Lock()
	if j.state == StateQueued {
		j.state = StateCanceled
		j.err = context.Canceled
		j.finished = m.cfg.Clock()
		finished := j.finished
		j.mu.Unlock()
		m.mu.Lock()
		m.metrics.Canceled++
		m.mu.Unlock()
		j.cancel()
		seq := j.events.next()
		m.emit(j, logRecord{Job: j.id, Seq: seq, Ev: evState, State: StateCanceled, Err: context.Canceled.Error(), Unix: finished.UnixNano()},
			Event{Seq: seq, Ev: evState, State: StateCanceled, Err: context.Canceled.Error(), Final: true})
		return nil
	}
	j.mu.Unlock()
	j.cancel()
	return nil
}

// Metrics returns a counter snapshot.
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	mt := m.metrics
	mt.QueueDepth = m.sched.depth
	return mt
}

// Draining reports whether the manager has begun shutdown.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Drain shuts the manager down: intake stops (Submit returns ErrDraining),
// queued jobs are canceled without running, and in-flight jobs get until
// ctx expires — or Config.DrainGrace, when ctx carries no deadline — to
// finish on their own before their contexts are canceled too. Drain
// always waits for the workers to exit — when it returns, no task is
// running, every journal a canceled sweep flushes is on disk, and the job
// log is closed. The returned error is ctx.Err() if the grace period
// expired (in-flight work was force-canceled), nil if everything finished
// in time.
func (m *Manager) Drain(ctx context.Context) error {
	if _, hasDeadline := ctx.Deadline(); !hasDeadline && m.cfg.DrainGrace > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, m.cfg.DrainGrace)
		defer cancel()
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.wg.Wait()
		return nil
	}
	m.draining = true
	// Empty every client queue under the lock: Submit can no longer add,
	// and workers skip jobs whose state is already terminal.
	drained := m.sched.drainAll()
	var canceled []*job
	for _, j := range drained {
		j.mu.Lock()
		if j.state == StateQueued {
			j.state = StateCanceled
			j.err = ErrDraining
			j.finished = m.cfg.Clock()
			m.metrics.Canceled++
			canceled = append(canceled, j)
			j.cancel()
		}
		j.mu.Unlock()
	}
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	for _, j := range canceled {
		seq := j.events.next()
		m.emit(j, logRecord{Job: j.id, Seq: seq, Ev: evState, State: StateCanceled, Err: ErrDraining.Error(), Unix: j.finished.UnixNano()},
			Event{Seq: seq, Ev: evState, State: StateCanceled, Err: ErrDraining.Error(), Final: true})
	}

	workersDone := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(workersDone)
	}()
	var forced error
	select {
	case <-workersDone:
	case <-ctx.Done():
		// Grace expired: cancel in-flight tasks and wait for real. Sweeps
		// checkpoint completed energies on the way out.
		forced = ctx.Err()
		m.cancelBase()
		<-workersDone
	}
	m.cancelBase()
	m.cfg.Store.Close() //nolint:errcheck // every record was already fsynced on append
	return forced
}

// Kill models a SIGKILL for the restart tests: no drain, no grace, and —
// decisively — no further journaling, so the log is left exactly as a
// crash at this instant would leave it. In-flight tasks see their
// contexts die; Kill waits for the workers to unwind (goroutine hygiene
// for tests) and closes the log file so a successor can reopen the path.
func (m *Manager) Kill() {
	m.killed.Store(true)
	m.mu.Lock()
	m.draining = true
	m.closed = true
	m.sched.drainAll() // queued jobs die silently, like the process did
	m.cond.Broadcast()
	m.mu.Unlock()
	m.cancelBase()
	m.wg.Wait()
	m.cfg.Store.Close() //nolint:errcheck // the crash model does not care
}

// worker pulls jobs off the fair queue until the manager closes.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		j := m.dequeue()
		if j == nil {
			return
		}
		m.run(j)
		m.mu.Lock()
		m.sched.release(j.client)
		m.cond.Broadcast() // a freed slot may unblock a capped client
		m.mu.Unlock()
	}
}

// dequeue blocks until the scheduler yields a job or the manager closes.
func (m *Manager) dequeue() *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if j := m.sched.pick(); j != nil {
			return j
		}
		if m.closed {
			return nil
		}
		m.cond.Wait()
	}
}

// run executes one job through its lifecycle.
func (m *Manager) run(j *job) {
	j.mu.Lock()
	if j.state != StateQueued { // canceled while queued
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = m.cfg.Clock()
	started := j.started
	j.mu.Unlock()
	m.mu.Lock()
	m.metrics.InFlight++
	m.mu.Unlock()
	seq := j.events.next()
	m.emit(j, logRecord{Job: j.id, Seq: seq, Ev: evState, State: StateRunning, Unix: started.UnixNano()},
		Event{Seq: seq, Ev: evState, State: StateRunning})

	var (
		out Outcome
		err error
	)
	//cbs:chaossite jobs.run
	if err = m.cfg.Chaos.JobFault(j.seq); err == nil {
		out, err = j.task(j.ctx, func(done, total int) {
			j.mu.Lock()
			j.done, j.total = done, total
			j.mu.Unlock()
			pseq := j.events.next()
			m.emit(j, logRecord{Job: j.id, Seq: pseq, Ev: evProgress, Done: done, Total: total, Unix: m.cfg.Clock().UnixNano()},
				Event{Seq: pseq, Ev: evProgress, State: StateRunning, Done: done, Total: total})
		})
	}

	finished := m.cfg.Clock()
	j.mu.Lock()
	j.finished = finished
	j.outcome = out
	j.err = err
	switch {
	case err == nil:
		j.state = StateDone
	case errors.Is(err, context.Canceled) || errors.Is(err, ErrDraining):
		j.state = StateCanceled
	default:
		j.state = StateFailed
	}
	state := j.state
	busy := finished.Sub(j.started)
	j.mu.Unlock()

	m.mu.Lock()
	m.metrics.InFlight--
	m.metrics.BusyNanos += int64(busy)
	switch state {
	case StateDone:
		m.metrics.Completed++
	case StateCanceled:
		m.metrics.Canceled++
	default:
		m.metrics.Failed++
	}
	m.mu.Unlock()

	errText := ""
	if err != nil {
		errText = err.Error()
	}
	seq = j.events.next()
	m.emit(j, logRecord{Job: j.id, Seq: seq, Ev: evState, State: state, Err: errText, Unix: finished.UnixNano()},
		Event{Seq: seq, Ev: evState, State: state, Err: errText, Final: true})
}
