// sched.go is the fair dispatch policy: queued jobs live in per-client
// FIFOs served by weighted round-robin, so one chatty client cannot
// starve everyone else out of the worker pool. Two mechanisms:
//
//   - weighted round-robin: the scheduler cycles client queues in a ring,
//     letting each client dispatch up to `weight` jobs (1..8, from the
//     submission) before the cursor moves on. Equal weights degrade to
//     plain round-robin; a weight-4 client gets ~4x the dispatch share of
//     a weight-1 client under contention.
//
//   - per-client in-flight cap: a client already running `cap` jobs is
//     passed over while any other client with queued work is below the
//     cap. The cap is work-conserving: when only capped clients have
//     queued work, it is ignored — fairness never idles a worker.
//
// The scheduler is not safe for concurrent use; the Manager calls it
// under its own lock. Total queued depth (the 429 bound) is the sum over
// clients — the global backpressure contract is unchanged.
package jobs

// schedClient is one client's queue state.
type schedClient struct {
	id       string
	weight   int
	credit   int // dispatches left before the cursor moves on
	inflight int // jobs running now
	fifo     []*job
}

// sched is the weighted round-robin dispatcher.
type sched struct {
	cap     int // per-client in-flight cap (work-conserving)
	clients map[string]*schedClient
	ring    []*schedClient
	cursor  int
	depth   int // total queued jobs
}

func newSched(perClientCap int) *sched {
	if perClientCap < 1 {
		perClientCap = 1
	}
	return &sched{cap: perClientCap, clients: make(map[string]*schedClient)}
}

// push queues a job under its client, creating the client on first use.
// The client's weight follows its most recent submission.
func (s *sched) push(j *job) {
	c := s.clients[j.client]
	if c == nil {
		c = &schedClient{id: j.client, weight: j.weight, credit: j.weight}
		s.clients[j.client] = c
		s.ring = append(s.ring, c)
	}
	c.weight = j.weight
	if c.credit > c.weight {
		c.credit = c.weight
	}
	c.fifo = append(c.fifo, j)
	s.depth++
}

// pick dispatches the next job under the WRR policy, or nil when nothing
// is eligible (empty, or every queued client is at its in-flight cap
// while idle capacity should wait for an uncapped client — which cannot
// happen, see below: the cap only binds when another client is under it).
func (s *sched) pick() *job {
	if s.depth == 0 {
		return nil
	}
	// Work-conserving cap: the cap only binds while some other queued
	// client is below it; otherwise a capped client may run.
	anyBelow := false
	for _, c := range s.ring {
		if len(c.fifo) > 0 && c.inflight < s.cap {
			anyBelow = true
			break
		}
	}
	// Two passes around the ring: the first may spend stale credit, the
	// second runs with fresh credit, so a queued eligible client is always
	// found within 2n steps.
	for i := 0; i < 2*len(s.ring); i++ {
		c := s.ring[s.cursor]
		if len(c.fifo) > 0 && c.credit > 0 && (!anyBelow || c.inflight < s.cap) {
			j := c.fifo[0]
			c.fifo = c.fifo[1:]
			c.credit--
			c.inflight++
			s.depth--
			if c.credit == 0 || len(c.fifo) == 0 {
				s.advance()
			}
			return j
		}
		s.advance()
	}
	return nil
}

// advance refreshes the departing client's credit and moves the cursor.
func (s *sched) advance() {
	if len(s.ring) == 0 {
		return
	}
	s.ring[s.cursor].credit = s.ring[s.cursor].weight
	s.cursor = (s.cursor + 1) % len(s.ring)
}

// release returns a client's in-flight slot after its job finished, and
// retires the client entirely once it is idle with nothing queued (the
// ring must not grow without bound across distinct client IDs).
func (s *sched) release(clientID string) {
	c := s.clients[clientID]
	if c == nil {
		return
	}
	if c.inflight > 0 {
		c.inflight--
	}
	if c.inflight == 0 && len(c.fifo) == 0 {
		delete(s.clients, clientID)
		for i, rc := range s.ring {
			if rc == c {
				s.ring = append(s.ring[:i], s.ring[i+1:]...)
				if s.cursor > i || s.cursor >= len(s.ring) {
					s.cursor--
				}
				if s.cursor < 0 {
					s.cursor = 0
				}
				break
			}
		}
	}
}

// drainAll empties every queue (manager shutdown), returning the jobs in
// client-ring order for cancellation.
func (s *sched) drainAll() []*job {
	var out []*job
	for _, c := range s.ring {
		out = append(out, c.fifo...)
		c.fifo = nil
	}
	s.depth = 0
	return out
}
