package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"cbs/internal/chaos"
	"cbs/internal/core"
)

// openStore opens the test job log, failing the test on error.
func openStore(t *testing.T, path, operator string) (*Store, []ReplayedJob) {
	t.Helper()
	st, replayed, err := OpenStore(path, operator)
	if err != nil {
		t.Fatal(err)
	}
	return st, replayed
}

// findReplayed returns the replayed job with the given ID.
func findReplayed(t *testing.T, rjs []ReplayedJob, id string) ReplayedJob {
	t.Helper()
	for _, rj := range rjs {
		if rj.ID == id {
			return rj
		}
	}
	t.Fatalf("job %s not replayed (%d jobs: %+v)", id, len(rjs), rjs)
	return ReplayedJob{}
}

// TestStoreRoundTrip: jobs journaled by one manager replay from the log
// with their identity, terminal state, and event sequence intact.
func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	st, replayed := openStore(t, path, "op-v1")
	if len(replayed) != 0 {
		t.Fatalf("fresh log replayed %d jobs", len(replayed))
	}
	m := New(Config{Workers: 1, QueueDepth: 8, Store: st})
	doneID, err := m.Submit(Submission{
		Kind: KindSweep, Client: "alice", Weight: 3,
		Fingerprint: "fp123", Spec: json.RawMessage(`{"ne":5}`),
		Task: func(ctx context.Context, progress func(int, int)) (Outcome, error) {
			progress(2, 5)
			return Outcome{Result: &core.Result{Energy: 1}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, doneID, StateDone)
	failID, err := submit(m, KindSolve, func(ctx context.Context, _ func(int, int)) (Outcome, error) {
		return Outcome{}, errors.New("solver exploded")
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, failID, StateFailed)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	_, replayed = openStore(t, path, "op-v1")
	if len(replayed) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(replayed))
	}
	rj := findReplayed(t, replayed, doneID)
	if rj.State != StateDone || rj.Kind != KindSweep || rj.Client != "alice" || rj.Weight != 3 {
		t.Errorf("replayed job %+v, want done sweep alice w3", rj)
	}
	if rj.Fingerprint != "fp123" || string(rj.Spec) != `{"ne":5}` {
		t.Errorf("identity lost: fp %q spec %q", rj.Fingerprint, rj.Spec)
	}
	if rj.Done != 2 || rj.Total != 5 {
		t.Errorf("replayed progress %d/%d, want 2/5", rj.Done, rj.Total)
	}
	// Events: queued, running, progress, done — strictly sequential seqs.
	if len(rj.Events) != 4 {
		t.Fatalf("replayed %d events, want 4: %+v", len(rj.Events), rj.Events)
	}
	for i, ev := range rj.Events {
		if ev.Seq != int64(i+1) {
			t.Errorf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
	}
	if !rj.Events[3].Final || rj.Events[3].State != StateDone {
		t.Errorf("last event %+v, want final done", rj.Events[3])
	}
	fj := findReplayed(t, replayed, failID)
	if fj.State != StateFailed || fj.Err == "" {
		t.Errorf("failed job replayed as %+v", fj)
	}
}

// TestStoreOperatorMismatch: a log written for one operator refuses to
// replay under another — typed, at startup, with no partial adoption.
func TestStoreOperatorMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	st, _ := openStore(t, path, "operator-a")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, err := OpenStore(path, "operator-b")
	if !errors.Is(err, ErrLogMismatch) {
		t.Fatalf("mismatched operator opened with err = %v, want ErrLogMismatch", err)
	}
}

// TestKillRestartReadopt is the crash-recovery invariant at the package
// level: SIGKILL (modeled by Kill — journaling stops, contexts die) with
// one job running and one queued; a successor manager replays the log,
// re-adopts both under their original IDs, runs them to completion, and
// numbers new submissions past the replayed IDs. Event sequences continue
// across the restart without gaps.
func TestKillRestartReadopt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	st, _ := openStore(t, path, "op-v1")
	m := New(Config{Workers: 1, QueueDepth: 8, Store: st})

	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	runID, err := m.Submit(Submission{
		Kind: KindSweep, Client: "alice", Spec: json.RawMessage(`{"which":"run"}`),
		Task: blockingTask(started, release, "r"),
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queuedID, err := m.Submit(Submission{
		Kind: KindSolve, Client: "bob", Spec: json.RawMessage(`{"which":"queued"}`),
		Task: blockingTask(nil, release, "q"),
	})
	if err != nil {
		t.Fatal(err)
	}

	m.Kill() // the process dies mid-flight

	st2, replayed := openStore(t, path, "op-v1")
	if len(replayed) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(replayed))
	}
	if rj := findReplayed(t, replayed, runID); rj.State != StateRunning {
		t.Errorf("killed running job replayed as %s, want running (terminal record was never written)", rj.State)
	}
	if rj := findReplayed(t, replayed, queuedID); rj.State != StateQueued {
		t.Errorf("killed queued job replayed as %s, want queued", rj.State)
	}

	m2 := New(Config{Workers: 2, QueueDepth: 8, Store: st2})
	var rebuilt atomic.Int64
	requeued, restored, failed := m2.Adopt(replayed, func(rj ReplayedJob) (Task, error) {
		rebuilt.Add(1)
		return func(ctx context.Context, _ func(int, int)) (Outcome, error) {
			return Outcome{Result: &core.Result{Energy: 42}}, nil
		}, nil
	})
	if requeued != 2 || restored != 0 || failed != 0 {
		t.Fatalf("adopt = (%d requeued, %d restored, %d failed), want (2, 0, 0)", requeued, restored, failed)
	}
	if rebuilt.Load() != 2 {
		t.Errorf("rebuild ran %d times, want 2", rebuilt.Load())
	}
	waitState(t, m2, runID, StateDone)
	waitState(t, m2, queuedID, StateDone)
	snap, err := m2.Get(runID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Outcome.Result == nil || snap.Outcome.Result.Energy != 42 {
		t.Errorf("re-adopted job outcome %+v, want the rebuilt task's result", snap.Outcome)
	}

	// The event stream is gapless across the crash: seqs 1..n. (Get can
	// report done a beat before the final event publishes, so drain the
	// live channel too.)
	events, live, cancel, err := m2.Watch(runID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if live != nil {
		timeout := time.After(5 * time.Second)
		for open := true; open; {
			select {
			case ev, ok := <-live:
				if !ok {
					open = false
					break
				}
				events = append(events, ev)
			case <-timeout:
				t.Fatal("event stream never delivered the final event")
			}
		}
	}
	for i, ev := range events {
		if ev.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d — the stream has a gap: %+v", i, ev.Seq, events)
		}
	}
	last := events[len(events)-1]
	if !last.Final || last.State != StateDone {
		t.Errorf("stream ends with %+v, want final done", last)
	}

	// New submissions number past every replayed ID.
	newID, err := submit(m2, KindSolve, func(ctx context.Context, _ func(int, int)) (Outcome, error) {
		return Outcome{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if newID == runID || newID == queuedID || !(newID > queuedID) {
		t.Errorf("post-restart ID %s collides with replayed IDs %s/%s", newID, runID, queuedID)
	}
	if mt := m2.Metrics(); mt.Readopted != 2 {
		t.Errorf("readopted metric = %d, want 2", mt.Readopted)
	}
	ctx, cancelDrain := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelDrain()
	m2.Drain(ctx) //nolint:errcheck
}

// TestAdoptTerminalRestored: a job that finished before the crash is
// restored as a queryable terminal snapshot, marked Restored, with its
// task never rebuilt.
func TestAdoptTerminalRestored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	st, _ := openStore(t, path, "op-v1")
	m := New(Config{Workers: 1, QueueDepth: 8, Store: st})
	id, err := submit(m, KindSolve, func(ctx context.Context, _ func(int, int)) (Outcome, error) {
		return Outcome{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, id, StateDone)
	m.Kill()

	st2, replayed := openStore(t, path, "op-v1")
	m2 := New(Config{Workers: 1, QueueDepth: 8, Store: st2})
	requeued, restored, failed := m2.Adopt(replayed, func(rj ReplayedJob) (Task, error) {
		t.Errorf("rebuild called for terminal job %s", rj.ID)
		return nil, nil
	})
	if requeued != 0 || restored != 1 || failed != 0 {
		t.Fatalf("adopt = (%d, %d, %d), want (0, 1, 0)", requeued, restored, failed)
	}
	snap, err := m2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateDone || !snap.Restored {
		t.Errorf("restored job %+v, want done+Restored", snap)
	}
	// Its event stream is closed: Watch returns the backlog and no channel.
	events, live, cancel, err := m2.Watch(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if live != nil {
		t.Error("terminal restored job returned a live event channel")
	}
	if len(events) == 0 || !events[len(events)-1].Final {
		t.Errorf("restored backlog %+v, want a final event", events)
	}
	ctx, cancelDrain := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelDrain()
	m2.Drain(ctx) //nolint:errcheck
}

// TestAdoptRebuildFailure: a replayed job whose spec no longer rebuilds
// fails with the typed ErrLostToRestart — it resolves, it does not vanish.
func TestAdoptRebuildFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	st, _ := openStore(t, path, "op-v1")
	m := New(Config{Workers: 1, QueueDepth: 8, Store: st})
	started := make(chan string, 1)
	release := make(chan struct{})
	id, err := submit(m, KindSolve, blockingTask(started, release, "x"))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	close(release)
	m.Kill()

	st2, replayed := openStore(t, path, "op-v1")
	m2 := New(Config{Workers: 1, QueueDepth: 8, Store: st2})
	requeued, restored, failed := m2.Adopt(replayed, func(rj ReplayedJob) (Task, error) {
		return nil, errors.New("spec version retired")
	})
	if requeued != 0 || restored != 0 || failed != 1 {
		t.Fatalf("adopt = (%d, %d, %d), want (0, 0, 1)", requeued, restored, failed)
	}
	snap, err := m2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateFailed || !errors.Is(snap.Err, ErrLostToRestart) {
		t.Errorf("unre-adoptable job = %s / %v, want failed / ErrLostToRestart", snap.State, snap.Err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m2.Drain(ctx) //nolint:errcheck
}

// TestChaosAdoptFault: with CBS_CHAOS_ADOPT-style re-adoption faults
// armed at rate 1, every unfinished replayed job typed-fails with both
// ErrLostToRestart and the chaos sentinel — and still resolves by ID.
func TestChaosAdoptFault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	st, _ := openStore(t, path, "op-v1")
	m := New(Config{Workers: 1, QueueDepth: 8, Store: st})
	started := make(chan string, 1)
	release := make(chan struct{})
	id, err := submit(m, KindSolve, blockingTask(started, release, "x"))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	close(release)
	m.Kill()

	st2, replayed := openStore(t, path, "op-v1")
	m2 := New(Config{Workers: 1, QueueDepth: 8, Store: st2,
		Chaos: chaos.New(chaosSeed(), chaos.Config{AdoptFault: 1})})
	requeued, restored, failed := m2.Adopt(replayed, func(rj ReplayedJob) (Task, error) {
		t.Error("rebuild ran despite injected adoption fault")
		return nil, nil
	})
	if requeued != 0 || restored != 0 || failed != 1 {
		t.Fatalf("adopt under faults = (%d, %d, %d), want (0, 0, 1)", requeued, restored, failed)
	}
	snap, err := m2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(snap.Err, ErrLostToRestart) || !errors.Is(snap.Err, chaos.ErrInjected) {
		t.Errorf("err = %v, want ErrLostToRestart wrapping chaos.ErrInjected", snap.Err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m2.Drain(ctx) //nolint:errcheck
}

// TestChaosJobLogSubmitRejected: when the queued record cannot be made
// durable (CBS_CHAOS_JOBLOG at rate 1), the submission is rejected with
// ErrJobLog and no job exists — accepted means recoverable.
func TestChaosJobLogSubmitRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	st, _ := openStore(t, path, "op-v1")
	st.SetChaos(chaos.New(chaosSeed(), chaos.Config{JobLogFault: 1}))
	m := New(Config{Workers: 1, QueueDepth: 8, Store: st})
	id, err := submit(m, KindSolve, func(ctx context.Context, _ func(int, int)) (Outcome, error) {
		t.Error("task ran though its submission was rejected")
		return Outcome{}, nil
	})
	if !errors.Is(err, ErrJobLog) || !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("submit err = %v (id %q), want ErrJobLog wrapping chaos.ErrInjected", err, id)
	}
	if mt := m.Metrics(); mt.Submitted != 0 || mt.Rejected != 1 || mt.QueueDepth != 0 {
		t.Errorf("metrics %+v, want nothing accepted", mt)
	}
	// The log (possibly holding a torn fragment from the fault) must still
	// replay cleanly: torn tails are a modeled crash, not corruption.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m.Drain(ctx) //nolint:errcheck
	_, replayed := openStore(t, path, "op-v1")
	if len(replayed) != 0 {
		t.Errorf("rejected submission left %d jobs in the log", len(replayed))
	}
}

// TestChaosJobLogSeedMatrix drives a full workload under a partial
// job-log fault rate (the CBS_CHAOS_JOBLOG seed matrix): submissions
// either reject typed or accept-and-complete, best-effort append failures
// are counted rather than fatal, and the surviving log always replays —
// every accepted job is either journaled terminal or re-adoptable.
func TestChaosJobLogSeedMatrix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	st, _ := openStore(t, path, "op-v1")
	st.SetChaos(chaos.New(chaosSeed(), chaos.Config{JobLogFault: 0.3}))
	m := New(Config{Workers: 2, QueueDepth: 64, Store: st})
	accepted := make(map[string]bool)
	rejected := 0
	for i := 0; i < 32; i++ {
		id, err := m.Submit(Submission{
			Kind: KindSolve, Client: fmt.Sprintf("c%d", i%3),
			Spec: json.RawMessage(`{}`),
			Task: func(ctx context.Context, _ func(int, int)) (Outcome, error) {
				return Outcome{}, nil
			},
		})
		if err != nil {
			if !errors.Is(err, ErrJobLog) {
				t.Fatalf("submit %d: %v, want ErrJobLog rejections only", i, err)
			}
			rejected++
			continue
		}
		accepted[id] = true
	}
	for id := range accepted {
		waitState(t, m, id, StateDone)
	}
	mt := m.Metrics()
	if int(mt.Submitted) != len(accepted) || int(mt.Rejected) != rejected {
		t.Errorf("metrics %+v vs accepted=%d rejected=%d", mt, len(accepted), rejected)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m.Drain(ctx) //nolint:errcheck

	// Every accepted job replays; faults must never corrupt the log.
	_, replayed := openStore(t, path, "op-v1")
	if len(replayed) != len(accepted) {
		t.Fatalf("replayed %d jobs, accepted %d", len(replayed), len(accepted))
	}
	for _, rj := range replayed {
		if !accepted[rj.ID] {
			t.Errorf("log invented job %s", rj.ID)
		}
		// A job whose terminal append was dropped replays as queued or
		// running — that is re-adoptable, not lost. Finished appends
		// replay done.
		if rj.State == StateFailed || rj.State == StateCanceled {
			t.Errorf("job %s replayed %s under a log-fault-only run", rj.ID, rj.State)
		}
	}
	if rejected == 0 && mt.LogErrors == 0 {
		t.Logf("seed %d drew no faults at rate 0.3 (possible but unlikely)", chaosSeed())
	}
}

// logSize returns the job log's on-disk size.
func logSize(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

// TestStoreCompaction: reopening a log whose finished jobs carry many
// progress ticks rewrites it through the atomic temp+fsync+rename path —
// the file shrinks, each terminal job keeps its state transitions plus
// the last tick with their original per-job seqs, every record of a
// still-running job survives untouched, and a second reopen finds
// nothing left to drop.
func TestStoreCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	st, _ := openStore(t, path, "op-v1")
	m := New(Config{Workers: 2, QueueDepth: 8, Store: st})

	const ticks = 50
	doneID, err := submit(m, KindSweep, func(ctx context.Context, progress func(int, int)) (Outcome, error) {
		for i := 1; i <= ticks; i++ {
			progress(i, ticks)
		}
		return Outcome{Result: &core.Result{Energy: 1}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, doneID, StateDone)

	// A job still mid-run at "crash" time: compaction must not touch it.
	release := make(chan struct{})
	defer close(release)
	ticked := make(chan struct{})
	liveID, err := submit(m, KindSolve, func(ctx context.Context, progress func(int, int)) (Outcome, error) {
		progress(1, 4)
		progress(2, 4)
		close(ticked)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return Outcome{}, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-ticked

	// Reopen without draining — the crash leaves the running job's
	// records ending mid-stream.
	before := logSize(t, path)
	st2, replayed := openStore(t, path, "op-v1")
	defer st2.Close()
	after := logSize(t, path)
	if after >= before {
		t.Fatalf("log did not shrink: %d -> %d bytes", before, after)
	}

	done := findReplayed(t, replayed, doneID)
	if done.State != StateDone || done.Done != ticks || done.Total != ticks {
		t.Errorf("done job replayed %+v, want done %d/%d", done, ticks, ticks)
	}
	// queued, running, last tick, done — with the seqs they were born with.
	wantSeqs := []int64{1, 2, ticks + 2, ticks + 3}
	if len(done.Events) != len(wantSeqs) {
		t.Fatalf("done job kept %d events, want %d: %+v", len(done.Events), len(wantSeqs), done.Events)
	}
	for i, ev := range done.Events {
		if ev.Seq != wantSeqs[i] {
			t.Errorf("event %d seq %d, want %d", i, ev.Seq, wantSeqs[i])
		}
	}
	if tick := done.Events[2]; tick.Ev != evProgress || tick.Done != ticks {
		t.Errorf("surviving tick %+v, want progress %d/%d", tick, ticks, ticks)
	}
	if fin := done.Events[3]; !fin.Final || fin.State != StateDone {
		t.Errorf("final event %+v, want terminal done", fin)
	}

	live := findReplayed(t, replayed, liveID)
	if live.State != StateRunning || live.Done != 2 || live.Total != 4 {
		t.Errorf("running job replayed %+v, want running 2/4", live)
	}
	if len(live.Events) != 4 { // queued, running, two ticks: all kept
		t.Errorf("running job kept %d events, want 4: %+v", len(live.Events), live.Events)
	}

	// Idempotent: a compacted log has nothing to drop, so the next open
	// must not rewrite it.
	st2.Close()
	st3, _ := openStore(t, path, "op-v1")
	defer st3.Close()
	if again := logSize(t, path); again != after {
		t.Errorf("second open changed the log: %d -> %d bytes", after, again)
	}
}

// TestSSEReplaySurvivesCompaction: a client that watched a job live and
// reconnects after a restart sends Last-Event-ID pointing into the
// compacted-away ticks; the replayed suffix must still land it gaplessly
// on the terminal event.
func TestSSEReplaySurvivesCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	st, _ := openStore(t, path, "op-v1")
	m := New(Config{Workers: 1, QueueDepth: 8, Store: st})

	const ticks = 30
	id, err := submit(m, KindSweep, func(ctx context.Context, progress func(int, int)) (Outcome, error) {
		for i := 1; i <= ticks; i++ {
			progress(i, ticks)
		}
		return Outcome{Result: &core.Result{Energy: 1}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, id, StateDone)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Restart: the reopen compacts, the manager re-adopts the log.
	st2, replayed := openStore(t, path, "op-v1")
	defer st2.Close()
	m2 := New(Config{Workers: 1, QueueDepth: 8, Store: st2})
	m2.Adopt(replayed, func(rj ReplayedJob) (Task, error) {
		return nil, errors.New("terminal jobs are restored, not rebuilt")
	})

	const last = 10 // a mid-run tick seq that compaction dropped
	past, liveCh, cancelW, err := m2.Watch(id, last)
	if err != nil {
		t.Fatal(err)
	}
	if cancelW != nil {
		defer cancelW()
	}
	if liveCh != nil {
		t.Error("terminal job handed out a live event channel")
	}
	if len(past) == 0 {
		t.Fatal("no events replayed past Last-Event-ID")
	}
	prev := int64(last)
	sawTick := false
	for _, ev := range past {
		if ev.Seq <= prev {
			t.Errorf("replayed seq %d out of order after %d", ev.Seq, prev)
		}
		prev = ev.Seq
		if ev.Ev == evProgress && ev.Done == ticks && ev.Total == ticks {
			sawTick = true
		}
	}
	if !sawTick {
		t.Errorf("final tick %d/%d missing from replayed suffix: %+v", ticks, ticks, past)
	}
	if fin := past[len(past)-1]; !fin.Final || fin.State != StateDone {
		t.Errorf("suffix ends with %+v, want terminal done", fin)
	}
}
