// events.go is the per-job event stream: every lifecycle transition and
// progress tick becomes a sequenced Event, buffered for replay (SSE
// Last-Event-ID) and fanned out live to subscribers. The sequence numbers
// are the same ones the job log journals, so a stream survives a server
// restart: replayed events come back with their original seqs and a
// reconnecting client resumes gaplessly from wherever it left off.
package jobs

import "sync"

// Event is one observable moment of a job's life.
type Event struct {
	// Seq numbers the job's events from 1, monotonically; it is the SSE
	// event id and the Last-Event-ID resume point.
	Seq int64 `json:"seq"`
	// Ev is the event kind: "state" (a lifecycle transition) or
	// "progress" (a completed step of a running task).
	Ev string `json:"ev"`
	// State is the job state after the event (for progress events, the
	// state the progress happened in: running).
	State State `json:"state"`
	// Done/Total carry task progress on progress events.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Err is the terminal error text, on failed/canceled finals.
	Err string `json:"error,omitempty"`
	// Final marks the last event a job will ever emit.
	Final bool `json:"final"`
}

// subBuffer bounds a subscriber's unread backlog. A subscriber that falls
// this far behind is disconnected (its channel closes mid-stream) and is
// expected to reconnect with Last-Event-ID — the buffer replays what it
// missed, so slowness costs a round-trip, never a gap.
const subBuffer = 64

// eventBuf is one job's event history plus its live subscribers.
type eventBuf struct {
	mu     sync.Mutex
	seq    int64 // last assigned sequence number
	events []Event
	subs   map[int]chan Event
	nextID int
	closed bool // a Final event has been published
}

func newEventBuf() *eventBuf {
	return &eventBuf{subs: make(map[int]chan Event)}
}

// seed preloads replayed events (restart re-adoption) so their original
// sequence numbers stay authoritative; new events continue past them.
func (b *eventBuf) seed(events []Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.events = append(b.events, events...)
	for _, ev := range events {
		if ev.Seq > b.seq {
			b.seq = ev.Seq
		}
		if ev.Final {
			b.closed = true
		}
	}
}

// next assigns the following sequence number without publishing — the
// caller journals the event first, then publishes exactly what it wrote.
func (b *eventBuf) next() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seq++
	return b.seq
}

// publish appends ev to the history and delivers it to every subscriber.
// A subscriber whose buffer is full is closed and dropped: it will
// reconnect and replay. After a Final event every subscriber is closed —
// the stream is over.
func (b *eventBuf) publish(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return // nothing follows a final event
	}
	b.events = append(b.events, ev)
	for id, ch := range b.subs {
		select {
		case ch <- ev:
		default:
			close(ch)
			delete(b.subs, id)
		}
	}
	if ev.Final {
		b.closed = true
		for id, ch := range b.subs {
			close(ch)
			delete(b.subs, id)
		}
	}
}

// watch returns the buffered events after afterSeq and, if the stream is
// still live, a channel of subsequent events plus a cancel function. For
// a finished job the channel is nil — the backlog is the whole story.
func (b *eventBuf) watch(afterSeq int64) ([]Event, <-chan Event, func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var past []Event
	for _, ev := range b.events {
		if ev.Seq > afterSeq {
			past = append(past, ev)
		}
	}
	if b.closed {
		return past, nil, func() {}
	}
	ch := make(chan Event, subBuffer)
	id := b.nextID
	b.nextID++
	b.subs[id] = ch
	cancel := func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if _, ok := b.subs[id]; ok {
			close(ch)
			delete(b.subs, id)
		}
	}
	return past, ch, cancel
}
