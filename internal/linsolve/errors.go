package linsolve

import (
	"errors"
	"fmt"
)

// Typed failure sentinels of the iterative solvers. Callers branch on them
// with errors.Is to drive the recovery ladder (restart on ErrBreakdown,
// fall back on ErrNoConvergence, degrade when the ladder is exhausted).
var (
	// ErrBreakdown is a Krylov breakdown: a vanishing BiCG/CG inner
	// product ended the recurrence before the residual target was met.
	ErrBreakdown = errors.New("linsolve: Krylov breakdown")
	// ErrNoConvergence is an iteration-cap failure: the solve ran out of
	// iterations (stagnation) without reaching the residual target.
	ErrNoConvergence = errors.New("linsolve: no convergence within the iteration cap")
)

// Err converts a Result into its typed failure: nil when the solve
// converged or was legitimately halted by the majority rule, ErrBreakdown
// on a Krylov breakdown, ErrNoConvergence otherwise.
func (r Result) Err() error {
	switch {
	case r.Converged || r.StoppedEarly:
		return nil
	case r.Breakdown:
		return fmt.Errorf("%w after %d iterations (residual %.2e)", ErrBreakdown, r.Iterations, r.Residual)
	default:
		return fmt.Errorf("%w: %d iterations (residual %.2e)", ErrNoConvergence, r.Iterations, r.Residual)
	}
}
