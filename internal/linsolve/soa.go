package linsolve

import (
	"math"

	"cbs/internal/soa"
)

// BlockApplySoA computes out = A*V on split-complex planes (block shape
// carried by the soa.Block).
type BlockApplySoA[F soa.Float] func(v, out *soa.Block[F])

// WorkspaceSoA is the split-complex counterpart of Workspace: the Krylov
// block vectors live as float planes, the per-column recurrence scalars
// stay complex128 (they are O(nb) bookkeeping, not bandwidth), and a pair
// of precision-F scalar scratch arrays carries the per-iteration alpha/beta
// conversions so the plane update kernels never convert in their inner
// loops. One workspace per worker is reused across all quadrature points;
// the steady-state solve allocates nothing.
type WorkspaceSoA[F soa.Float] struct {
	n, nb int

	r, rd, p, pd, q, qd *soa.Block[F]

	rho, alpha, beta, dots []complex128
	alRe, alIm             []F // alpha split per column (exact at F=float64)
	beRe, beIm             []F // beta split per column
	nrmB, nrmBD, rel, relD []float64
	nrm2, nrm2d            []float64
	active                 []bool

	results []Result
}

// NewWorkspaceSoA allocates a split-complex workspace for n x nb solves.
func NewWorkspaceSoA[F soa.Float](n, nb int) *WorkspaceSoA[F] {
	w := &WorkspaceSoA[F]{}
	w.Reserve(n, nb)
	return w
}

// Reserve grows the workspace to hold an n x nb solve, reusing capacity.
func (w *WorkspaceSoA[F]) Reserve(n, nb int) {
	w.n, w.nb = n, nb
	if w.r == nil {
		w.r = soa.NewBlock[F](n, nb)
		w.rd = soa.NewBlock[F](n, nb)
		w.p = soa.NewBlock[F](n, nb)
		w.pd = soa.NewBlock[F](n, nb)
		w.q = soa.NewBlock[F](n, nb)
		w.qd = soa.NewBlock[F](n, nb)
	} else {
		w.r.Reserve(n, nb)
		w.rd.Reserve(n, nb)
		w.p.Reserve(n, nb)
		w.pd.Reserve(n, nb)
		w.q.Reserve(n, nb)
		w.qd.Reserve(n, nb)
	}
	if cap(w.rho) < nb {
		w.rho = make([]complex128, nb)
		w.alpha = make([]complex128, nb)
		w.beta = make([]complex128, nb)
		w.dots = make([]complex128, nb)
		w.alRe = make([]F, nb)
		w.alIm = make([]F, nb)
		w.beRe = make([]F, nb)
		w.beIm = make([]F, nb)
		w.nrmB = make([]float64, nb)
		w.nrmBD = make([]float64, nb)
		w.rel = make([]float64, nb)
		w.relD = make([]float64, nb)
		w.nrm2 = make([]float64, nb)
		w.nrm2d = make([]float64, nb)
		w.active = make([]bool, nb)
		w.results = make([]Result, nb)
	}
}

// MemoryBytes reports the workspace's resident bytes.
func (w *WorkspaceSoA[F]) MemoryBytes() int64 {
	blocks := w.r.MemoryBytes() * 6
	var f F
	fsize := int64(8)
	if _, ok := any(f).(float32); ok {
		fsize = 4
	}
	return blocks + int64(cap(w.rho))*(4*16+4*fsize+6*8+1)
}

// blockDotsSoA computes dots[c] = <x_c, y_c> on split planes. The products
// and the accumulation run in float64 regardless of F: at F = float64 this
// reproduces blockDots bit-for-bit (the sign-flip of the conjugate is
// exact), and at F = float32 it implements the mixed-precision contract
// that dot products accumulate in double.
//
//cbs:hotpath
func blockDotsSoA[F soa.Float](dots []complex128, x, y *soa.Block[F]) {
	for c := range dots {
		dots[c] = 0
	}
	nb := x.NB()
	n := x.N()
	for i := 0; i < n; i++ {
		o := i * nb
		xr := x.Re[o : o+nb]
		xi := x.Im[o:][:nb]
		yr := y.Re[o:][:nb]
		yi := y.Im[o:][:nb]
		for c := range dots {
			ar, ai := float64(xr[c]), float64(xi[c])
			br, bi := float64(yr[c]), float64(yi[c])
			re := ar*br + ai*bi
			im := ar*bi - ai*br
			dots[c] += complex(re, im)
		}
	}
}

// blockNormsSoA computes nrm[c] = ||x_c|| on split planes with float64
// accumulation (bit-identical to blockNorms at F = float64).
//
//cbs:hotpath
func blockNormsSoA[F soa.Float](nrm []float64, x *soa.Block[F]) {
	for c := range nrm {
		nrm[c] = 0
	}
	nb := x.NB()
	n := x.N()
	for i := 0; i < n; i++ {
		o := i * nb
		xr := x.Re[o : o+nb]
		xi := x.Im[o:][:nb]
		for c := range nrm {
			re, im := float64(xr[c]), float64(xi[c])
			nrm[c] += re*re + im*im
		}
	}
	for c := range nrm {
		nrm[c] = math.Sqrt(nrm[c])
	}
}

// BlockBiCGDualSoA is BlockBiCGDual on split-complex planes: the same
// algorithm, masking, group-stop, chaos-injection and breakdown behaviour,
// with the block vectors stored as soa.Block planes. At F = float64 every
// result (solution bits, residuals, iteration counts) is identical to the
// AoS solver; at F = float32 the recurrence scalars are still derived from
// float64-accumulated dots, and only the plane arithmetic rounds to single
// precision. The returned slice aliases ws.results; ws may be nil.
func BlockBiCGDualSoA[F soa.Float](a, ad BlockApplySoA[F], b, bd, x, xd *soa.Block[F], opts Options, groups []*GroupStop, ws *WorkspaceSoA[F]) []Result {
	n, nb := b.N(), b.NB()
	if nb < 1 {
		panic("linsolve: BlockBiCGDualSoA bad block width")
	}
	if bd.N() != n || bd.NB() != nb || x.N() != n || x.NB() != nb || xd.N() != n || xd.NB() != nb {
		panic("linsolve: BlockBiCGDualSoA shape mismatch")
	}
	if groups != nil && len(groups) != nb {
		panic("linsolve: BlockBiCGDualSoA groups length mismatch")
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = defaultMaxIter(n)
	}
	if ws == nil {
		ws = NewWorkspaceSoA[F](n, nb)
	} else {
		ws.Reserve(n, nb)
	}
	r, rd := ws.r, ws.rd
	p, pd := ws.p, ws.pd
	q, qd := ws.q, ws.qd
	rho, alpha, beta, dots := ws.rho[:nb], ws.alpha[:nb], ws.beta[:nb], ws.dots[:nb]
	alRe, alIm := ws.alRe[:nb], ws.alIm[:nb]
	beRe, beIm := ws.beRe[:nb], ws.beIm[:nb]
	nrmB, nrmBD := ws.nrmB[:nb], ws.nrmBD[:nb]
	rel, relD := ws.rel[:nb], ws.relD[:nb]
	nrm2, nrm2d := ws.nrm2[:nb], ws.nrm2d[:nb]
	active := ws.active[:nb]
	results := ws.results[:nb]

	group := func(c int) *GroupStop {
		if groups == nil {
			return nil
		}
		return groups[c]
	}

	// r = b - A x, rd = bd - A^dagger xd.
	a(x, q)
	ad(xd, qd)
	for c := range results {
		results[c] = Result{MatVecApplied: 2}
		active[c] = true
	}
	subPlanes(r.Re, b.Re, q.Re)
	subPlanes(r.Im, b.Im, q.Im)
	subPlanes(rd.Re, bd.Re, qd.Re)
	subPlanes(rd.Im, bd.Im, qd.Im)
	copy(p.Re, r.Re)
	copy(p.Im, r.Im)
	copy(pd.Re, rd.Re)
	copy(pd.Im, rd.Im)

	blockNormsSoA(nrmB, b)
	blockNormsSoA(nrmBD, bd)
	for c := range nrmB {
		if nrmB[c] == 0 {
			nrmB[c] = 1
		}
		if nrmBD[c] == 0 {
			nrmBD[c] = 1
		}
	}
	blockDotsSoA(rho, rd, r)
	if opts.Chaos != nil {
		// Injected per-column Lanczos breakdowns (deterministic per
		// (point, column, attempt) site; see internal/chaos).
		for c := range rho {
			s := opts.ChaosSite
			s.Col += c
			//cbs:chaossite bicg.soa-breakdown
			if opts.Chaos.Breakdown(s) {
				rho[c] = 0
			}
		}
	}
	blockNormsSoA(rel, r)
	blockNormsSoA(relD, rd)
	for c := range rel {
		rel[c] /= nrmB[c]
		relD[c] /= nrmBD[c]
	}
	if opts.History {
		results[0].History = append(results[0].History, rel[0])
	}

	remaining := nb
	for iter := 0; iter < maxIter && remaining > 0; iter++ {
		for c := 0; c < nb; c++ {
			if !active[c] {
				continue
			}
			if rel[c] <= opts.Tol && relD[c] <= opts.Tol {
				results[c].Converged = true
				if g := group(c); g != nil {
					g.MarkConverged()
				}
				active[c] = false
				remaining--
				continue
			}
			if g := group(c); g != nil && rel[c] <= opts.looseTol() && relD[c] <= opts.looseTol() && g.ShouldStop() {
				results[c].StoppedEarly = true
				active[c] = false
				remaining--
				continue
			}
			if cabs2(rho[c]) < breakdownTol {
				results[c].Breakdown = true
				active[c] = false
				remaining--
			}
		}
		if remaining == 0 {
			break
		}
		a(p, q)
		ad(pd, qd)
		blockDotsSoA(dots, pd, q)
		for c := 0; c < nb; c++ {
			alpha[c] = 0
			if !active[c] {
				continue
			}
			results[c].MatVecApplied += 2
			if cabs2(dots[c]) < breakdownTol {
				results[c].Breakdown = true
				active[c] = false
				remaining--
				continue
			}
			alpha[c] = rho[c] / dots[c]
		}
		if remaining == 0 {
			break
		}
		splitScalars(alRe, alIm, alpha)
		updateSolutionsSoA(x, xd, r, rd, p, pd, q, qd, alRe, alIm)
		blockDotsSoA(dots, rd, r)
		for c := 0; c < nb; c++ {
			beta[c] = 0
			if !active[c] {
				continue
			}
			beta[c] = dots[c] / rho[c]
			rho[c] = dots[c]
		}
		splitScalars(beRe, beIm, beta)
		updateDirectionsSoA(p, pd, r, rd, beRe, beIm, active)
		blockNormsSoA(nrm2, r)
		blockNormsSoA(nrm2d, rd)
		for c := 0; c < nb; c++ {
			if !active[c] {
				continue
			}
			rel[c] = nrm2[c] / nrmB[c]
			relD[c] = nrm2d[c] / nrmBD[c]
			results[c].Iterations++
		}
		if opts.History && active[0] {
			results[0].History = append(results[0].History, rel[0])
		}
	}
	for c := 0; c < nb; c++ {
		if active[c] && rel[c] <= opts.Tol && relD[c] <= opts.Tol {
			results[c].Converged = true
			if g := group(c); g != nil {
				g.MarkConverged()
			}
		}
		results[c].Residual = rel[c]
		results[c].DualResidual = relD[c]
	}
	return results
}

// subPlanes computes dst = a - b over one plane.
//
//cbs:hotpath
func subPlanes[F soa.Float](dst, a, b []F) {
	b = b[:len(dst)]
	a = a[:len(dst)]
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// splitScalars converts per-column complex scalars to precision-F pairs
// once per iteration (identity at F = float64).
func splitScalars[F soa.Float](re, im []F, z []complex128) {
	for c := range z {
		re[c] = F(real(z[c]))
		im[c] = F(imag(z[c]))
	}
}

// updateSolutionsSoA is the fused alpha-step on split planes. Per element
// the real/imag update sequence reproduces the complex multiply-accumulate
// of updateSolutions operation by operation (the conjugate's sign flip is
// folded algebraically, which is exact), so at F = float64 the iterates
// are bit-identical. alpha = 0 freezes a column exactly as in the AoS path.
//
//cbs:hotpath
func updateSolutionsSoA[F soa.Float](x, xd, r, rd, p, pd, q, qd *soa.Block[F], alRe, alIm []F) {
	n, nb := x.N(), x.NB()
	for i := 0; i < n; i++ {
		o := i * nb
		for c := range alRe {
			ar, ai := alRe[c], alIm[c]
			if ar == 0 && ai == 0 {
				continue
			}
			j := o + c
			pr, pi := p.Re[j], p.Im[j]
			x.Re[j] += ar*pr - ai*pi
			x.Im[j] += ar*pi + ai*pr
			pdr, pdi := pd.Re[j], pd.Im[j]
			xd.Re[j] += ar*pdr + ai*pdi
			xd.Im[j] += ar*pdi - ai*pdr
			qr, qi := q.Re[j], q.Im[j]
			r.Re[j] -= ar*qr - ai*qi
			r.Im[j] -= ar*qi + ai*qr
			qdr, qdi := qd.Re[j], qd.Im[j]
			rd.Re[j] -= ar*qdr + ai*qdi
			rd.Im[j] -= ar*qdi - ai*qdr
		}
	}
}

// updateDirectionsSoA is the fused beta-step on split planes: p = r + beta*p
// and its dual with conj(beta), skipping frozen columns.
//
//cbs:hotpath
func updateDirectionsSoA[F soa.Float](p, pd, r, rd *soa.Block[F], beRe, beIm []F, active []bool) {
	n, nb := p.N(), p.NB()
	for i := 0; i < n; i++ {
		o := i * nb
		for c := range beRe {
			if !active[c] {
				continue
			}
			br, bi := beRe[c], beIm[c]
			j := o + c
			pr, pi := p.Re[j], p.Im[j]
			p.Re[j] = r.Re[j] + (br*pr - bi*pi)
			p.Im[j] = r.Im[j] + (br*pi + bi*pr)
			pdr, pdi := pd.Re[j], pd.Im[j]
			pd.Re[j] = rd.Re[j] + (br*pdr + bi*pdi)
			pd.Im[j] = rd.Im[j] + (br*pdi - bi*pdr)
		}
	}
}

// residualNormsSoA computes rel[c] = ||(b - A x)_c|| / nrmB[c] given the
// residual block already formed in r (shared by the mixed-precision
// refinement loop).
func residualNormsSoA[F soa.Float](rel []float64, r *soa.Block[F], nrmB []float64) {
	blockNormsSoA(rel, r)
	for c := range rel {
		rel[c] /= nrmB[c]
	}
}

// normsFloorOne replaces zero norms by one (the relative-residual guard
// shared with the AoS path).
func normsFloorOne(nrm []float64) {
	for c := range nrm {
		if nrm[c] == 0 {
			nrm[c] = 1
		}
	}
}
