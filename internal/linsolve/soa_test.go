package linsolve

import (
	"math/rand"
	"testing"

	"cbs/internal/chaos"
	"cbs/internal/soa"
)

// testOp is a synthetic operator (complex diagonal + real nearest-neighbour
// coupling on a ring) whose AoS and SoA applications are the same
// arithmetic operation for operation, so BlockBiCGDual and
// BlockBiCGDualSoA see bit-identical matvecs. The diagonal dominates, so
// BiCG converges quickly; dual = conjugate diagonal (the operator is
// complex-symmetric under this coupling).
type testOp struct {
	dRe, dIm []float64
	c        float64
}

func newTestOp(n int, seed int64) *testOp {
	rng := rand.New(rand.NewSource(seed))
	op := &testOp{dRe: make([]float64, n), dIm: make([]float64, n), c: 0.1}
	for i := 0; i < n; i++ {
		op.dRe[i] = 2 + rng.Float64()
		op.dIm[i] = rng.Float64() - 0.5
	}
	return op
}

func (t *testOp) applyAoS(dagger bool) BlockApply {
	return func(v, out []complex128, nb int) {
		n := len(t.dRe)
		for i := 0; i < n; i++ {
			di := complex(t.dRe[i], t.dIm[i])
			if dagger {
				di = conj(di)
			}
			ip := (i + 1) % n
			im := (i - 1 + n) % n
			for k := 0; k < nb; k++ {
				out[i*nb+k] = di*v[i*nb+k] + complex(t.c, 0)*(v[ip*nb+k]+v[im*nb+k])
			}
		}
	}
}

func (t *testOp) applySoA(dagger bool) BlockApplySoA[float64] {
	return func(v, out *soa.Block[float64]) {
		n := len(t.dRe)
		nb := v.NB()
		for i := 0; i < n; i++ {
			dr, di := t.dRe[i], t.dIm[i]
			if dagger {
				di = -di
			}
			ip := (i + 1) % n
			im := (i - 1 + n) % n
			for k := 0; k < nb; k++ {
				j := i*nb + k
				vr, vi := v.Re[j], v.Im[j]
				pr := v.Re[ip*nb+k] + v.Re[im*nb+k]
				pi := v.Im[ip*nb+k] + v.Im[im*nb+k]
				// Same operation order as the AoS complex expression:
				// d*v (4 mults, 2 adds), then c*(p+m), then the sum.
				out.Re[j] = (dr*vr - di*vi) + t.c*pr
				out.Im[j] = (dr*vi + di*vr) + t.c*pi
			}
		}
	}
}

// TestBlockBiCGDualSoAParity: at float64 the SoA solver must reproduce the
// AoS solver bit-for-bit — solutions, residuals, iteration counts and
// convergence flags.
func TestBlockBiCGDualSoAParity(t *testing.T) {
	n := 120
	op := newTestOp(n, 3)
	for _, nb := range []int{1, 4, 7} {
		rng := rand.New(rand.NewSource(int64(50 + nb)))
		b := make([]complex128, n*nb)
		for i := range b {
			b[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		x := make([]complex128, n*nb)
		xd := make([]complex128, n*nb)
		opts := Options{Tol: 1e-12, MaxIter: 500, History: true}
		rs := BlockBiCGDual(op.applyAoS(false), op.applyAoS(true), b, b, x, xd, nb, opts, nil, nil)

		bb := soa.NewBlock[float64](n, nb)
		soa.Pack(bb, b)
		xs := soa.NewBlock[float64](n, nb)
		xds := soa.NewBlock[float64](n, nb)
		srs := BlockBiCGDualSoA(op.applySoA(false), op.applySoA(true), bb, bb, xs, xds, opts, nil, nil)

		for c := range rs {
			if rs[c].Iterations != srs[c].Iterations || rs[c].Converged != srs[c].Converged ||
				rs[c].Residual != srs[c].Residual || rs[c].DualResidual != srs[c].DualResidual {
				t.Fatalf("nb=%d col %d: result mismatch: aos %+v, soa %+v", nb, c, rs[c], srs[c])
			}
		}
		if len(rs[0].History) != len(srs[0].History) {
			t.Fatalf("nb=%d: history length mismatch %d vs %d", nb, len(rs[0].History), len(srs[0].History))
		}
		for i := range rs[0].History {
			if rs[0].History[i] != srs[0].History[i] {
				t.Fatalf("nb=%d: history[%d] differs: %g vs %g", nb, i, rs[0].History[i], srs[0].History[i])
			}
		}
		gx := make([]complex128, n*nb)
		gxd := make([]complex128, n*nb)
		soa.Unpack(gx, xs)
		soa.Unpack(gxd, xds)
		for i := range x {
			if x[i] != gx[i] || xd[i] != gxd[i] {
				t.Fatalf("nb=%d: solution element %d differs: aos (%v,%v), soa (%v,%v)", nb, i, x[i], xd[i], gx[i], gxd[i])
			}
		}
	}
}

// TestBlockBiCGDualMixedConverges: the mixed solver must reach the
// refinement target on a well-conditioned system, beat the float32 noise
// floor by orders of magnitude, and report its refinement bookkeeping.
func TestBlockBiCGDualMixedConverges(t *testing.T) {
	n := 120
	nb := 4
	op := newTestOp(n, 5)
	op32 := &testOp32{op: op}
	rng := rand.New(rand.NewSource(60))
	b := soa.NewBlock[float64](n, nb)
	for i := range b.Re {
		b.Re[i] = rng.Float64()*2 - 1
		b.Im[i] = rng.Float64()*2 - 1
	}
	x := soa.NewBlock[float64](n, nb)
	xd := soa.NewBlock[float64](n, nb)
	opts := Options{Tol: 1e-10, MaxIter: 500}
	rs := BlockBiCGDualMixed(op.applySoA(false), op.applySoA(true), op32.apply(false), op32.apply(true), b, b, x, xd, opts, nil, nil)
	for c, r := range rs {
		if !r.Converged || r.RefineFailed {
			t.Fatalf("col %d: mixed solve did not converge: %+v", c, r)
		}
		if r.Residual > MixedFinalTol || r.DualResidual > MixedFinalTol {
			t.Fatalf("col %d: residual %g / %g above target %g", c, r.Residual, r.DualResidual, MixedFinalTol)
		}
		if r.RefineSteps < 1 {
			t.Fatalf("col %d: expected at least one refinement step, got %d", c, r.RefineSteps)
		}
	}
}

// TestBlockBiCGDualMixedChaosRefine: a chaos-targeted column must end
// RefineFailed (its corrections are suppressed) while untargeted columns
// still converge.
func TestBlockBiCGDualMixedChaosRefine(t *testing.T) {
	n := 120
	nb := 4
	op := newTestOp(n, 5)
	op32 := &testOp32{op: op}
	rng := rand.New(rand.NewSource(61))
	b := soa.NewBlock[float64](n, nb)
	for i := range b.Re {
		b.Re[i] = rng.Float64()*2 - 1
		b.Im[i] = rng.Float64()*2 - 1
	}
	x := soa.NewBlock[float64](n, nb)
	xd := soa.NewBlock[float64](n, nb)
	inj := chaos.New(1, chaos.Config{RefineFail: 1, Columns: []int{2}})
	opts := Options{Tol: 1e-10, MaxIter: 500, Chaos: inj, ChaosSite: chaos.Site{Point: 0, Col: 0}}
	rs := BlockBiCGDualMixed(op.applySoA(false), op.applySoA(true), op32.apply(false), op32.apply(true), b, b, x, xd, opts, nil, nil)
	for c, r := range rs {
		if c == 2 {
			if !r.RefineFailed || r.Converged {
				t.Fatalf("col 2: expected RefineFailed under chaos, got %+v", r)
			}
			continue
		}
		if !r.Converged {
			t.Fatalf("col %d: untargeted column failed: %+v", c, r)
		}
	}
}

// testOp32 is the float32 instantiation of testOp (same arithmetic rounded
// to single precision).
type testOp32 struct{ op *testOp }

func (t *testOp32) apply(dagger bool) BlockApplySoA[float32] {
	return func(v, out *soa.Block[float32]) {
		n := len(t.op.dRe)
		nb := v.NB()
		c := float32(t.op.c)
		for i := 0; i < n; i++ {
			dr := float32(t.op.dRe[i])
			di := float32(t.op.dIm[i])
			if dagger {
				di = -di
			}
			ip := (i + 1) % n
			im := (i - 1 + n) % n
			for k := 0; k < nb; k++ {
				j := i*nb + k
				vr, vi := v.Re[j], v.Im[j]
				pr := v.Re[ip*nb+k] + v.Re[im*nb+k]
				pi := v.Im[ip*nb+k] + v.Im[im*nb+k]
				out.Re[j] = (dr*vr - di*vi) + c*pr
				out.Im[j] = (dr*vi + di*vr) + c*pi
			}
		}
	}
}

// TestSoASolverZeroAlloc pins the steady-state zero-allocation contract of
// the SoA and mixed solvers with preallocated workspaces.
func TestSoASolverZeroAlloc(t *testing.T) {
	n := 64
	nb := 4
	op := newTestOp(n, 9)
	op32 := &testOp32{op: op}
	b := soa.NewBlock[float64](n, nb)
	rng := rand.New(rand.NewSource(70))
	for i := range b.Re {
		b.Re[i] = rng.Float64()*2 - 1
		b.Im[i] = rng.Float64()*2 - 1
	}
	x := soa.NewBlock[float64](n, nb)
	xd := soa.NewBlock[float64](n, nb)
	a, ad := op.applySoA(false), op.applySoA(true)
	a32, ad32 := op32.apply(false), op32.apply(true)
	ws := NewWorkspaceSoA[float64](n, nb)
	mws := NewMixedWorkspace(n, nb)
	opts := Options{Tol: 1e-10, MaxIter: 300}

	if allocs := testing.AllocsPerRun(5, func() {
		x.Zero()
		xd.Zero()
		BlockBiCGDualSoA(a, ad, b, b, x, xd, opts, nil, ws)
	}); allocs != 0 {
		t.Errorf("BlockBiCGDualSoA allocates %.0f times per solve, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(5, func() {
		x.Zero()
		xd.Zero()
		BlockBiCGDualMixed(a, ad, a32, ad32, b, b, x, xd, opts, nil, mws)
	}); allocs != 0 {
		t.Errorf("BlockBiCGDualMixed allocates %.0f times per solve, want 0", allocs)
	}
}
