package linsolve

import (
	"cbs/internal/soa"
)

// Mixed-precision dual block solve: the inner BiCG iterates on float32
// planes (half the bandwidth and cache footprint of the float64 solve, with
// dots/norms still accumulated in float64), and one or two steps of
// iterative refinement lift each shifted-system solution back to float64:
//
//	solve32  A d = b        (relative tol ~ MixedInnerTol)
//	repeat:  r = b - A x    (float64 residual, float64 operator)
//	         solve32 A d = r
//	         x += d
//
// Each refinement step contracts the error by roughly the inner solve's
// relative accuracy (for contour-shifted systems, whose conditioning the
// ring keeps moderate), so two steps reach ~1e-10 from a 1e-5 inner solve.
// The moments accumulated downstream (internal/ssm) therefore see full
// complex128 solutions; only the Krylov iteration runs in single precision.
// A column whose refinement budget runs out without reaching the target is
// flagged RefineFailed (and not Converged): the caller routes it through
// the full-precision recovery ladder, and the sweep ladder escalates the
// whole energy to Precision "complex128" when too many columns fail at
// once (see internal/sweep).

const (
	// MixedInnerTol floors the float32 inner-solve tolerance: single
	// precision cannot meaningfully iterate below ~10*eps32 relative
	// residual, so asking for more only burns iterations.
	MixedInnerTol = 1e-5

	// MixedFinalTol floors the refinement target. Two refinement steps at
	// inner accuracy 1e-5 reach ~1e-10 on well-conditioned systems; the
	// floor guards against an unreachable caller tolerance (e.g. the
	// paper's 1e-10 exactly at the float64 noise floor of a large system).
	MixedFinalTol = 1e-9

	// DefaultRefineSteps is the refinement budget per shifted system.
	DefaultRefineSteps = 2
)

// MixedWorkspace carries the float32 inner-solve state and the float64
// refinement scratch; one per worker, reused across quadrature points with
// zero steady-state allocations.
type MixedWorkspace struct {
	n, nb int

	ws32                 *WorkspaceSoA[float32]
	b32, bd32, x32, xd32 *soa.Block[float32]

	r64, rd64 *soa.Block[float64] // refinement residuals
	q64, qd64 *soa.Block[float64] // A*x scratch

	nrmB, nrmBD, rel, relD []float64
	done                   []bool
	refineBlocked          []bool // chaos-suppressed columns
	results                []Result
}

// NewMixedWorkspace allocates a mixed workspace for n x nb solves.
func NewMixedWorkspace(n, nb int) *MixedWorkspace {
	w := &MixedWorkspace{}
	w.Reserve(n, nb)
	return w
}

// Reserve grows the workspace, reusing capacity when sufficient.
func (w *MixedWorkspace) Reserve(n, nb int) {
	w.n, w.nb = n, nb
	if w.ws32 == nil {
		w.ws32 = NewWorkspaceSoA[float32](n, nb)
		w.b32 = soa.NewBlock[float32](n, nb)
		w.bd32 = soa.NewBlock[float32](n, nb)
		w.x32 = soa.NewBlock[float32](n, nb)
		w.xd32 = soa.NewBlock[float32](n, nb)
		w.r64 = soa.NewBlock[float64](n, nb)
		w.rd64 = soa.NewBlock[float64](n, nb)
		w.q64 = soa.NewBlock[float64](n, nb)
		w.qd64 = soa.NewBlock[float64](n, nb)
	} else {
		w.ws32.Reserve(n, nb)
		w.b32.Reserve(n, nb)
		w.bd32.Reserve(n, nb)
		w.x32.Reserve(n, nb)
		w.xd32.Reserve(n, nb)
		w.r64.Reserve(n, nb)
		w.rd64.Reserve(n, nb)
		w.q64.Reserve(n, nb)
		w.qd64.Reserve(n, nb)
	}
	if cap(w.nrmB) < nb {
		w.nrmB = make([]float64, nb)
		w.nrmBD = make([]float64, nb)
		w.rel = make([]float64, nb)
		w.relD = make([]float64, nb)
		w.done = make([]bool, nb)
		w.refineBlocked = make([]bool, nb)
		w.results = make([]Result, nb)
	}
}

// MemoryBytes reports the workspace's resident bytes.
func (w *MixedWorkspace) MemoryBytes() int64 {
	b := w.ws32.MemoryBytes()
	b += w.b32.MemoryBytes() + w.bd32.MemoryBytes() + w.x32.MemoryBytes() + w.xd32.MemoryBytes()
	b += w.r64.MemoryBytes() + w.rd64.MemoryBytes() + w.q64.MemoryBytes() + w.qd64.MemoryBytes()
	return b + int64(cap(w.nrmB))*(4*8+2+1)*2
}

// BlockBiCGDualMixed solves the nb primal/dual pairs like BlockBiCGDual but
// with the float32 inner solver plus iterative refinement described above.
// b, bd, x and xd are float64 plane blocks; x/xd hold the initial guesses
// and receive the refined solutions. groups (may be nil) only receives
// MarkConverged notifications — a mixed solve never stops early on the
// majority rule, because its convergence is decided by the float64
// refinement residual, not the inner iteration. The returned slice aliases
// mws.results; mws may be nil.
func BlockBiCGDualMixed(a64, ad64 BlockApplySoA[float64], a32, ad32 BlockApplySoA[float32], b, bd, x, xd *soa.Block[float64], opts Options, groups []*GroupStop, mws *MixedWorkspace) []Result {
	n, nb := b.N(), b.NB()
	if nb < 1 {
		panic("linsolve: BlockBiCGDualMixed bad block width")
	}
	if bd.N() != n || bd.NB() != nb || x.N() != n || x.NB() != nb || xd.N() != n || xd.NB() != nb {
		panic("linsolve: BlockBiCGDualMixed shape mismatch")
	}
	if groups != nil && len(groups) != nb {
		panic("linsolve: BlockBiCGDualMixed groups length mismatch")
	}
	if mws == nil {
		mws = NewMixedWorkspace(n, nb)
	} else {
		mws.Reserve(n, nb)
	}
	innerOpts := opts
	innerOpts.Group = nil
	if innerOpts.Tol < MixedInnerTol {
		innerOpts.Tol = MixedInnerTol
	}
	finalTol := opts.Tol
	if finalTol < MixedFinalTol {
		finalTol = MixedFinalTol
	}

	results := mws.results[:nb]
	rel, relD := mws.rel[:nb], mws.relD[:nb]
	done := mws.done[:nb]
	blocked := mws.refineBlocked[:nb]
	for c := range results {
		results[c] = Result{}
		done[c] = false
		//cbs:chaossite mixed.refine
		blocked[c] = opts.Chaos.RefineFail(opts.ChaosSite.Point, opts.ChaosSite.Col+c)
	}

	// Inner solve of the original systems at float32, from the caller's
	// initial guess.
	soa.Convert(mws.b32, b)
	soa.Convert(mws.bd32, bd)
	soa.Convert(mws.x32, x)
	soa.Convert(mws.xd32, xd)
	rs := BlockBiCGDualSoA(a32, ad32, mws.b32, mws.bd32, mws.x32, mws.xd32, innerOpts, nil, mws.ws32)
	for c := range results {
		results[c].Iterations = rs[c].Iterations
		results[c].MatVecApplied = rs[c].MatVecApplied
		results[c].Breakdown = rs[c].Breakdown
		results[c].History = rs[c].History
		rs[c].History = nil // ownership moves to the mixed result
	}
	soa.Convert(x, mws.x32)
	soa.Convert(xd, mws.xd32)

	blockNormsSoA(mws.nrmB[:nb], b)
	blockNormsSoA(mws.nrmBD[:nb], bd)
	normsFloorOne(mws.nrmB[:nb])
	normsFloorOne(mws.nrmBD[:nb])

	for step := 0; ; step++ {
		// Float64 residuals of the current iterates.
		a64(x, mws.q64)
		ad64(xd, mws.qd64)
		subPlanes(mws.r64.Re, b.Re, mws.q64.Re)
		subPlanes(mws.r64.Im, b.Im, mws.q64.Im)
		subPlanes(mws.rd64.Re, bd.Re, mws.qd64.Re)
		subPlanes(mws.rd64.Im, bd.Im, mws.qd64.Im)
		residualNormsSoA(rel, mws.r64, mws.nrmB[:nb])
		residualNormsSoA(relD, mws.rd64, mws.nrmBD[:nb])
		allDone := true
		for c := range done {
			results[c].MatVecApplied += 2
			results[c].Residual = rel[c]
			results[c].DualResidual = relD[c]
			done[c] = rel[c] <= finalTol && relD[c] <= finalTol
			if !done[c] {
				allDone = false
			}
		}
		if allDone || step >= DefaultRefineSteps {
			break
		}

		// Correction solve at float32 on the float64 residuals, from zero.
		soa.Convert(mws.b32, mws.r64)
		soa.Convert(mws.bd32, mws.rd64)
		mws.x32.Zero()
		mws.xd32.Zero()
		innerOpts.History = false
		crs := BlockBiCGDualSoA(a32, ad32, mws.b32, mws.bd32, mws.x32, mws.xd32, innerOpts, nil, mws.ws32)
		for c := range results {
			results[c].Iterations += crs[c].Iterations
			results[c].MatVecApplied += crs[c].MatVecApplied
			if !done[c] {
				results[c].RefineSteps++
			}
		}
		accumMixedCorrection(x, xd, mws.x32, mws.xd32, done, blocked)
	}

	for c := range results {
		if results[c].Converged = done[c]; done[c] {
			if groups != nil && groups[c] != nil {
				groups[c].MarkConverged()
			}
		} else {
			results[c].RefineFailed = true
		}
	}
	return results
}

// accumMixedCorrection adds the promoted float32 corrections into the
// float64 iterates, skipping columns already at target (their solutions
// freeze, matching the masked-column semantics of the direct solver) and
// chaos-blocked columns (whose refinement is forced to stagnate).
func accumMixedCorrection(x, xd *soa.Block[float64], dx, dxd *soa.Block[float32], done, blocked []bool) {
	n, nb := x.N(), x.NB()
	for i := 0; i < n; i++ {
		o := i * nb
		for c := 0; c < nb; c++ {
			if done[c] || blocked[c] {
				continue
			}
			j := o + c
			x.Re[j] += float64(dx.Re[j])
			x.Im[j] += float64(dx.Im[j])
			xd.Re[j] += float64(dxd.Re[j])
			xd.Im[j] += float64(dxd.Im[j])
		}
	}
}
