package linsolve

import (
	"errors"
	"math/rand"
	"testing"

	"cbs/internal/chaos"
	"cbs/internal/zlinalg"
)

func residualNorm(a *zlinalg.Matrix, x, b []complex128) float64 {
	r := zlinalg.MulVec(a, x)
	for i := range r {
		r[i] -= b[i]
	}
	return zlinalg.Norm2(r) / zlinalg.Norm2(b)
}

func TestGMRESSolvesNonHermitianSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 40
	a := randDiagDominant(rng, n)
	b := randVec(rng, n)
	x := make([]complex128, n)
	res := GMRES(matApply(a), b, x, 0, Options{Tol: 1e-11})
	if !res.Converged {
		t.Fatalf("GMRES did not converge: %+v", res)
	}
	if nr := residualNorm(a, x, b); nr > 1e-10 {
		t.Errorf("residual %g", nr)
	}
	if res.MatVecApplied == 0 {
		t.Error("matvec counter not recorded")
	}
}

// TestGMRESRestartCycles: a short restart length still converges, just in
// more cycles (the fallback default must not depend on m >= n).
func TestGMRESRestartCycles(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 50
	a := randDiagDominant(rng, n)
	b := randVec(rng, n)
	x := make([]complex128, n)
	res := GMRES(matApply(a), b, x, 5, Options{Tol: 1e-10, MaxIter: 2000})
	if !res.Converged {
		t.Fatalf("GMRES(5) did not converge: %+v", res)
	}
	if nr := residualNorm(a, x, b); nr > 1e-9 {
		t.Errorf("residual %g", nr)
	}
}

// TestGMRESIndefiniteSystem: GMRES must handle the indefinite shifted
// systems that break CG/BiCG — a shifted Laplacian with the shift inside
// the spectrum.
func TestGMRESIndefiniteSystem(t *testing.T) {
	n := 60
	a := zlinalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, complex(2.0-1.3, 0))
		if i > 0 {
			a.Set(i, i-1, -1)
			a.Set(i-1, i, -1)
		}
	}
	rng := rand.New(rand.NewSource(13))
	b := randVec(rng, n)
	x := make([]complex128, n)
	res := GMRES(matApply(a), b, x, 0, Options{Tol: 1e-10, MaxIter: 5000})
	if !res.Converged {
		t.Fatalf("GMRES failed on the indefinite system: %+v", res)
	}
	if nr := residualNorm(a, x, b); nr > 1e-8 {
		t.Errorf("residual %g", nr)
	}
}

func TestGMRESIterationCap(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n := 30
	a := randDiagDominant(rng, n)
	b := randVec(rng, n)
	x := make([]complex128, n)
	res := GMRES(matApply(a), b, x, 0, Options{Tol: 1e-30, MaxIter: 4})
	if res.Converged {
		t.Error("cannot converge to 1e-30 in 4 iterations")
	}
	if res.Iterations > 4 {
		t.Errorf("iterations %d exceed cap", res.Iterations)
	}
	if err := res.Err(); !errors.Is(err, ErrNoConvergence) {
		t.Errorf("capped GMRES Err() = %v, want ErrNoConvergence", err)
	}
}

// TestGMRESDualSolvesBothSystems: the fallback rung must preserve the
// primal/dual pairing of the ring contour.
func TestGMRESDualSolvesBothSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	n := 35
	a := randDiagDominant(rng, n)
	ah := a.ConjTranspose()
	b := randVec(rng, n)
	bd := randVec(rng, n)
	x := make([]complex128, n)
	xd := make([]complex128, n)
	rp, rd := GMRESDual(matApply(a), matApply(ah), b, bd, x, xd, 0, Options{Tol: 1e-11})
	if !rp.Converged || !rd.Converged {
		t.Fatalf("GMRESDual did not converge: primal %+v dual %+v", rp, rd)
	}
	if nr := residualNorm(a, x, b); nr > 1e-10 {
		t.Errorf("primal residual %g", nr)
	}
	if nr := residualNorm(ah, xd, bd); nr > 1e-10 {
		t.Errorf("dual residual %g", nr)
	}
	if rp.MatVecApplied <= rd.MatVecApplied {
		t.Error("primal result must carry the combined matvec count")
	}
}

// TestResultErrTaxonomy: Result.Err must expose the typed sentinels.
func TestResultErrTaxonomy(t *testing.T) {
	if err := (Result{Converged: true}).Err(); err != nil {
		t.Errorf("converged solve has error %v", err)
	}
	if err := (Result{StoppedEarly: true}).Err(); err != nil {
		t.Errorf("majority-stopped solve has error %v", err)
	}
	if err := (Result{Breakdown: true}).Err(); !errors.Is(err, ErrBreakdown) {
		t.Errorf("breakdown Err() = %v, want ErrBreakdown", err)
	}
	if err := (Result{}).Err(); !errors.Is(err, ErrNoConvergence) {
		t.Errorf("stagnated Err() = %v, want ErrNoConvergence", err)
	}
	if errors.Is((Result{Breakdown: true}).Err(), ErrNoConvergence) {
		t.Error("breakdown must not match ErrNoConvergence")
	}
}

// TestInjectedBreakdownBiCGDual: a chaos injector targeting this site must
// force an immediate breakdown; the same solve with attempt=1 (restart
// rate 0) must heal.
func TestInjectedBreakdownBiCGDual(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	n := 30
	a := randDiagDominant(rng, n)
	b := randVec(rng, n)
	inj := chaos.New(1, chaos.Config{Breakdown: 1})
	x := make([]complex128, n)
	xd := make([]complex128, n)
	res := BiCGDual(matApply(a), matApply(a.ConjTranspose()), b, b, x, xd,
		Options{Tol: 1e-11, Chaos: inj, ChaosSite: chaos.Site{Point: 2, Col: 3}})
	if !res.Breakdown {
		t.Fatalf("injected breakdown did not trigger: %+v", res)
	}
	if res.Iterations != 0 {
		t.Errorf("breakdown after %d iterations, want 0", res.Iterations)
	}
	if err := res.Err(); !errors.Is(err, ErrBreakdown) {
		t.Errorf("Err() = %v", err)
	}
	// The restart attempt draws a fresh decision (RestartBreakdown = 0):
	// the same systems now solve cleanly.
	res = BiCGDual(matApply(a), matApply(a.ConjTranspose()), b, b, x, xd,
		Options{Tol: 1e-11, Chaos: inj, ChaosSite: chaos.Site{Point: 2, Col: 3, Attempt: 1}})
	if !res.Converged {
		t.Fatalf("restart attempt did not converge: %+v", res)
	}
}

// TestInjectedBreakdownBlocked: per-column injection in BlockBiCGDual must
// break exactly the targeted columns and leave the rest converging.
func TestInjectedBreakdownBlocked(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n, nb := 30, 4
	a := randDiagDominant(rng, n)
	ah := a.ConjTranspose()
	apply := func(v, out []complex128, w int) { blockApplyDense(a, v, out, w) }
	applyD := func(v, out []complex128, w int) { blockApplyDense(ah, v, out, w) }
	b := make([]complex128, n*nb)
	for i := range b {
		b[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	x := make([]complex128, n*nb)
	xd := make([]complex128, n*nb)
	inj := chaos.New(1, chaos.Config{Breakdown: 1, Columns: []int{1, 3}})
	rs := BlockBiCGDual(apply, applyD, b, b, x, xd, nb,
		Options{Tol: 1e-11, Chaos: inj, ChaosSite: chaos.Site{Point: 0, Col: 0}}, nil, nil)
	for c, r := range rs {
		targeted := c == 1 || c == 3
		if targeted && !r.Breakdown {
			t.Errorf("column %d: injected breakdown did not trigger: %+v", c, r)
		}
		if !targeted && !r.Converged {
			t.Errorf("column %d: clean column did not converge: %+v", c, r)
		}
	}
}

// blockApplyDense applies a dense matrix to a row-major interleaved block.
func blockApplyDense(m *zlinalg.Matrix, v, out []complex128, nb int) {
	n := m.Rows
	col := make([]complex128, n)
	res := make([]complex128, n)
	for c := 0; c < nb; c++ {
		for i := 0; i < n; i++ {
			col[i] = v[i*nb+c]
		}
		copy(res, zlinalg.MulVec(m, col))
		for i := 0; i < n; i++ {
			out[i*nb+c] = res[i]
		}
	}
}

// TestGroupStopStragglerUnderInjectedNonConvergence exercises the paper's
// strictly-over-half early-stop rule with a column that never converges
// (breakdown injected at every attempt, fallback failed too): across a
// group of "quadrature points" the majority must converge and mark the
// group, the straggler must never trip the stop prematurely, and no solve
// may deadlock. This is the satellite guarantee that one poisoned column
// cannot stall or corrupt the load-balancing layer.
func TestGroupStopStragglerUnderInjectedNonConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	n, nb := 30, 3
	nPoints := 5
	a := randDiagDominant(rng, n)
	ah := a.ConjTranspose()
	apply := func(v, out []complex128, w int) { blockApplyDense(a, v, out, w) }
	applyD := func(v, out []complex128, w int) { blockApplyDense(ah, v, out, w) }
	b := make([]complex128, n*nb)
	for i := range b {
		b[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	// Column 1 breaks down at every point and every attempt.
	inj := chaos.New(5, chaos.Config{Breakdown: 1, RestartBreakdown: 1, Columns: []int{1}})
	groups := make([]*GroupStop, nb)
	for c := range groups {
		groups[c] = NewGroupStop(nPoints, true)
	}
	for j := 0; j < nPoints; j++ {
		x := make([]complex128, n*nb)
		xd := make([]complex128, n*nb)
		rs := BlockBiCGDual(apply, applyD, b, b, x, xd, nb,
			Options{Tol: 1e-11, MaxIter: 500, Chaos: inj, ChaosSite: chaos.Site{Point: j}},
			groups, nil)
		for c, r := range rs {
			if c == 1 {
				if r.Converged {
					t.Fatalf("point %d: poisoned column converged", j)
				}
				if r.StoppedEarly {
					t.Fatalf("point %d: straggler stopped early despite zero converged members", j)
				}
				continue
			}
			if r.Err() != nil {
				t.Fatalf("point %d column %d: healthy column failed: %+v", j, c, r)
			}
		}
	}
	// Healthy columns reached full majority; the straggler column marked
	// nothing and its controller must not request a stop.
	for c, g := range groups {
		if c == 1 {
			if g.Converged() != 0 {
				t.Errorf("straggler group counted %d conversions", g.Converged())
			}
			if g.ShouldStop() {
				t.Error("straggler group must not stop with zero conversions")
			}
			continue
		}
		// Once strictly more than half converged, later points may stop
		// early instead of converging fully — that is the rule working.
		if 2*g.Converged() <= nPoints {
			t.Errorf("column %d: only %d of %d points converged", c, g.Converged(), nPoints)
		}
		if !g.ShouldStop() {
			t.Errorf("column %d: majority reached but ShouldStop is false", c)
		}
	}
	// Strictly-over-half: with exactly half converged the rule must hold a
	// straggler in the loop (it exits via MaxIter, not early stop).
	half := NewGroupStop(2, true)
	half.MarkConverged()
	x := make([]complex128, n)
	xd := make([]complex128, n)
	res := BiCGDual(matApply(a), matApply(ah), b[:n], b[:n], x, xd,
		Options{Tol: 1e-30, LooseTol: 1e30, MaxIter: 8, Group: half})
	if res.StoppedEarly {
		t.Error("exactly half converged must not stop the straggler (strictly-over-half rule)")
	}
	if err := res.Err(); !errors.Is(err, ErrNoConvergence) {
		t.Errorf("held straggler Err() = %v, want ErrNoConvergence", err)
	}
}
