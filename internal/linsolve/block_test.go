package linsolve

import (
	"math/rand"
	"testing"

	"cbs/internal/zlinalg"
)

// randOperator builds a well-conditioned random dense operator and its
// adjoint as Apply closures plus BlockApply wrappers that perform exactly
// the same per-column arithmetic (deinterleave, apply, reinterleave), so
// blocked and per-column solves follow bit-identical floating-point paths.
func randOperator(n int, seed int64) (a, ad Apply, ab, abd BlockApply) {
	rng := rand.New(rand.NewSource(seed))
	m := zlinalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, complex(rng.Float64()*0.4-0.2, rng.Float64()*0.4-0.2))
		}
		m.Set(i, i, m.At(i, i)+complex(4+rng.Float64(), rng.Float64()-0.5))
	}
	mh := m.ConjTranspose()
	mul := func(mat *zlinalg.Matrix) Apply {
		return func(v, out []complex128) {
			for i := 0; i < n; i++ {
				row := mat.Row(i)
				var s complex128
				for j, rv := range row {
					s += rv * v[j]
				}
				out[i] = s
			}
		}
	}
	a, ad = mul(m), mul(mh)
	wrap := func(ap Apply) BlockApply {
		col := make([]complex128, n)
		res := make([]complex128, n)
		return func(v, out []complex128, nb int) {
			for c := 0; c < nb; c++ {
				for i := 0; i < n; i++ {
					col[i] = v[i*nb+c]
				}
				ap(col, res)
				for i := 0; i < n; i++ {
					out[i*nb+c] = res[i]
				}
			}
		}
	}
	return a, ad, wrap(a), wrap(ad)
}

func interleave(cols [][]complex128) []complex128 {
	nb := len(cols)
	n := len(cols[0])
	out := make([]complex128, n*nb)
	for c, col := range cols {
		for i, v := range col {
			out[i*nb+c] = v
		}
	}
	return out
}

// TestBlockBiCGDualMatchesPerColumn: for random operators and nb in
// {1, 3, 8}, the blocked solver must reproduce the per-column BiCGDual
// solutions, iteration counts and convergence flags (including a trivially
// converged zero column, which exercises the masking).
func TestBlockBiCGDualMatchesPerColumn(t *testing.T) {
	n := 40
	for _, nb := range []int{1, 3, 8} {
		a, ad, ab, abd := randOperator(n, int64(11*nb+1))
		rng := rand.New(rand.NewSource(int64(nb)))
		bc := make([][]complex128, nb)
		bdc := make([][]complex128, nb)
		for c := range bc {
			bc[c] = make([]complex128, n)
			bdc[c] = make([]complex128, n)
			for i := range bc[c] {
				if nb > 1 && c == 1 {
					continue // zero column: converges with 0 iterations
				}
				bc[c][i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
				bdc[c][i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
			}
		}
		opts := Options{Tol: 1e-10}

		b := interleave(bc)
		bd := interleave(bdc)
		x := make([]complex128, n*nb)
		xd := make([]complex128, n*nb)
		rs := BlockBiCGDual(ab, abd, b, bd, x, xd, nb, opts, nil, nil)

		for c := 0; c < nb; c++ {
			xc := make([]complex128, n)
			xdc := make([]complex128, n)
			want := BiCGDual(a, ad, bc[c], bdc[c], xc, xdc, opts)
			if rs[c].Iterations != want.Iterations {
				t.Errorf("nb=%d col %d: %d iterations, per-column took %d", nb, c, rs[c].Iterations, want.Iterations)
			}
			if rs[c].Converged != want.Converged || rs[c].Breakdown != want.Breakdown {
				t.Errorf("nb=%d col %d: flags (conv %v, bkdn %v) vs (%v, %v)",
					nb, c, rs[c].Converged, rs[c].Breakdown, want.Converged, want.Breakdown)
			}
			if rs[c].MatVecApplied != want.MatVecApplied {
				t.Errorf("nb=%d col %d: %d matvecs, per-column %d", nb, c, rs[c].MatVecApplied, want.MatVecApplied)
			}
			var d, nrm float64
			for i := 0; i < n; i++ {
				d += cabs2(x[i*nb+c]-xc[i]) + cabs2(xd[i*nb+c]-xdc[i])
				nrm += cabs2(xc[i]) + cabs2(xdc[i])
			}
			if nrm == 0 {
				nrm = 1
			}
			if d/nrm > 1e-26 { // squared norms: ~1e-13 relative
				t.Errorf("nb=%d col %d: solution deviation %g", nb, c, d/nrm)
			}
		}
	}
}

// TestBlockBiCGDualHistory: column 0's residual history matches the
// per-column solve.
func TestBlockBiCGDualHistory(t *testing.T) {
	n, nb := 30, 3
	a, ad, ab, abd := randOperator(n, 5)
	rng := rand.New(rand.NewSource(9))
	bc := make([][]complex128, nb)
	for c := range bc {
		bc[c] = make([]complex128, n)
		for i := range bc[c] {
			bc[c][i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
	}
	opts := Options{Tol: 1e-10, History: true}
	b := interleave(bc)
	x := make([]complex128, n*nb)
	xd := make([]complex128, n*nb)
	rs := BlockBiCGDual(ab, abd, b, b, x, xd, nb, opts, nil, nil)

	xc := make([]complex128, n)
	xdc := make([]complex128, n)
	want := BiCGDual(a, ad, bc[0], bc[0], xc, xdc, opts)
	if len(rs[0].History) != len(want.History) {
		t.Fatalf("history length %d vs %d", len(rs[0].History), len(want.History))
	}
	for i := range want.History {
		if rs[0].History[i] != want.History[i] {
			t.Errorf("history[%d] = %g vs %g", i, rs[0].History[i], want.History[i])
		}
	}
}

// TestBlockBiCGDualGroupStop: a column whose group majority has converged
// must stop early (at the loose tolerance) while other columns keep
// iterating to full convergence.
func TestBlockBiCGDualGroupStop(t *testing.T) {
	n, nb := 40, 4
	_, _, ab, abd := randOperator(n, 21)
	rng := rand.New(rand.NewSource(2))
	b := make([]complex128, n*nb)
	for i := range b {
		b[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	groups := make([]*GroupStop, nb)
	for c := range groups {
		groups[c] = NewGroupStop(4, true)
	}
	// Column 2's group majority has already converged elsewhere; with a huge
	// loose tolerance it must stop at its first check.
	groups[2].MarkConverged()
	groups[2].MarkConverged()
	groups[2].MarkConverged()
	opts := Options{Tol: 1e-10, LooseTol: 1e30}
	x := make([]complex128, n*nb)
	xd := make([]complex128, n*nb)
	rs := BlockBiCGDual(ab, abd, b, b, x, xd, nb, opts, groups, NewWorkspace(n, nb))
	if !rs[2].StoppedEarly || rs[2].Iterations != 0 {
		t.Errorf("column 2 not stopped early: %+v", rs[2])
	}
	for c := 0; c < nb; c++ {
		if c == 2 {
			continue
		}
		if !rs[c].Converged {
			t.Errorf("column %d did not converge: %+v", c, rs[c])
		}
		if rs[c].StoppedEarly {
			t.Errorf("column %d stopped early without majority", c)
		}
	}
	// The stopped column's solution froze at the initial guess (zero).
	for i := 0; i < n; i++ {
		if x[i*nb+2] != 0 {
			t.Fatal("stopped column was updated")
		}
	}
	// Converged columns marked their groups.
	for c := 0; c < nb; c++ {
		want := 1
		if c == 2 {
			want = 3
		}
		if got := groups[c].Converged(); got != want {
			t.Errorf("group %d counts %d converged, want %d", c, got, want)
		}
	}
}

// TestBlockBiCGDualZeroAlloc: with a reused workspace the steady-state
// solve loop must not allocate (the zero-allocation hot-path claim).
func TestBlockBiCGDualZeroAlloc(t *testing.T) {
	n, nb := 32, 4
	_, _, ab, abd := randOperator(n, 33)
	rng := rand.New(rand.NewSource(3))
	b := make([]complex128, n*nb)
	for i := range b {
		b[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	x := make([]complex128, n*nb)
	xd := make([]complex128, n*nb)
	ws := NewWorkspace(n, nb)
	opts := Options{Tol: 1e-10}
	allocs := testing.AllocsPerRun(10, func() {
		for i := range x {
			x[i] = 0
			xd[i] = 0
		}
		BlockBiCGDual(ab, abd, b, b, x, xd, nb, opts, nil, ws)
	})
	if allocs != 0 {
		t.Errorf("steady-state blocked solve allocates %.1f times per call, want 0", allocs)
	}
}

// TestWorkspaceReuseAcrossWidths: a workspace must survive alternating
// block widths and problem sizes.
func TestWorkspaceReuseAcrossWidths(t *testing.T) {
	ws := NewWorkspace(16, 2)
	for _, dims := range [][2]int{{16, 2}, {8, 8}, {40, 3}, {16, 1}} {
		n, nb := dims[0], dims[1]
		_, _, ab, abd := randOperator(n, int64(n+nb))
		rng := rand.New(rand.NewSource(int64(nb)))
		b := make([]complex128, n*nb)
		for i := range b {
			b[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		x := make([]complex128, n*nb)
		xd := make([]complex128, n*nb)
		rs := BlockBiCGDual(ab, abd, b, b, x, xd, nb, Options{Tol: 1e-10}, nil, ws)
		for c, r := range rs {
			if !r.Converged {
				t.Errorf("n=%d nb=%d col %d did not converge (residual %g)", n, nb, c, r.Residual)
			}
		}
	}
}
