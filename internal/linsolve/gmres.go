package linsolve

import (
	"math"
	"math/cmplx"

	"cbs/internal/zlinalg"
)

// DefaultGMRESRestart is the Krylov subspace size of a restarted GMRES
// cycle when Options/callers do not choose one.
const DefaultGMRESRestart = 30

// GMRES solves A x = b with restarted GMRES(m) (Saad, Iterative Methods,
// Sec. 6.5): Arnoldi with modified Gram-Schmidt and a Givens-rotation QR of
// the Hessenberg least-squares problem. Unlike BiCG it cannot suffer a
// Lanczos breakdown on the indefinite shifted systems P(z) — its only exit
// modes are convergence and the iteration cap — which makes it the fallback
// rung of the contour solve recovery ladder. It is not allocation-free and
// costs O(m) vectors of memory per cycle; the ladder only pays that for the
// rare columns BiCG cannot finish.
//
// x holds the initial guess and is overwritten with the solution. restart
// is the cycle length m (<= 0 selects DefaultGMRESRestart, capped at the
// problem dimension). Group early stopping is not consulted: a fallback
// solve is already a straggler.
func GMRES(a Apply, b, x []complex128, restart int, opts Options) Result {
	n := len(b)
	if len(x) != n {
		panic("linsolve: GMRES length mismatch")
	}
	m := restart
	if m <= 0 {
		m = DefaultGMRESRestart
	}
	if m > n {
		m = n
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = defaultMaxIter(n)
	}
	res := Result{}

	nb := zlinalg.Norm2(b)
	if nb == 0 {
		nb = 1
	}

	// Arnoldi basis (m+1 vectors), Hessenberg column storage, Givens
	// rotations and the rotated residual vector g.
	v := make([][]complex128, m+1)
	for i := range v {
		v[i] = make([]complex128, n)
	}
	h := make([][]complex128, m+1) // h[i][j]: row i, column j
	for i := range h {
		h[i] = make([]complex128, m)
	}
	cs := make([]complex128, m)
	sn := make([]complex128, m)
	g := make([]complex128, m+1)
	y := make([]complex128, m)
	w := make([]complex128, n)

	rel := math.Inf(1)
	for res.Iterations < maxIter {
		// r0 = b - A x into v[0].
		a(x, w)
		res.MatVecApplied++
		for i := 0; i < n; i++ {
			v[0][i] = b[i] - w[i]
		}
		beta := zlinalg.Norm2(v[0])
		rel = beta / nb
		if opts.History {
			res.History = append(res.History, rel)
		}
		if rel <= opts.Tol {
			res.Converged = true
			break
		}
		inv := complex(1/beta, 0)
		for i := 0; i < n; i++ {
			v[0][i] *= inv
		}
		for i := range g {
			g[i] = 0
		}
		g[0] = complex(beta, 0)

		// One restart cycle of at most m Arnoldi steps.
		k := 0
		for ; k < m && res.Iterations < maxIter; k++ {
			a(v[k], w)
			res.MatVecApplied++
			res.Iterations++
			// Modified Gram-Schmidt.
			for i := 0; i <= k; i++ {
				h[i][k] = zlinalg.Dot(v[i], w)
				zlinalg.Axpy(-h[i][k], v[i], w)
			}
			hk1 := zlinalg.Norm2(w)
			h[k+1][k] = complex(hk1, 0)
			if hk1 > 0 {
				inv := complex(1/hk1, 0)
				for i := 0; i < n; i++ {
					v[k+1][i] = w[i] * inv
				}
			}
			// Apply the accumulated Givens rotations to the new column,
			// then form the rotation annihilating h[k+1][k].
			for i := 0; i < k; i++ {
				t := cs[i]*h[i][k] + sn[i]*h[i+1][k]
				h[i+1][k] = -conj(sn[i])*h[i][k] + conj(cs[i])*h[i+1][k]
				h[i][k] = t
			}
			cs[k], sn[k] = givens(h[k][k], h[k+1][k])
			h[k][k] = cs[k]*h[k][k] + sn[k]*h[k+1][k]
			h[k+1][k] = 0
			g[k+1] = -conj(sn[k]) * g[k]
			g[k] = cs[k] * g[k]
			rel = math.Sqrt(cabs2(g[k+1])) / nb
			if opts.History {
				res.History = append(res.History, rel)
			}
			if rel <= opts.Tol || hk1 == 0 {
				k++
				break
			}
		}
		// Back-substitute y from the triangularized Hessenberg system and
		// update x += V y.
		for i := k - 1; i >= 0; i-- {
			s := g[i]
			for j := i + 1; j < k; j++ {
				s -= h[i][j] * y[j]
			}
			y[i] = s / h[i][i]
		}
		for i := 0; i < k; i++ {
			zlinalg.Axpy(y[i], v[i], x)
		}
		if rel <= opts.Tol {
			// Confirm with a true residual on the next cycle head; the
			// rotated estimate is exact in exact arithmetic but the caller
			// deserves an honest final value.
			a(x, w)
			res.MatVecApplied++
			var rr float64
			for i := 0; i < n; i++ {
				d := b[i] - w[i]
				rr += real(d)*real(d) + imag(d)*imag(d)
			}
			rel = math.Sqrt(rr) / nb
			if rel <= opts.Tol {
				res.Converged = true
				break
			}
		}
	}
	if rel <= opts.Tol {
		res.Converged = true
	}
	res.Residual = rel
	return res
}

// givens returns the rotation (c, s) with |c|^2 + |s|^2 = 1 such that
// [c s; -conj(s) conj(c)] * [a; b] = [r; 0].
func givens(a, b complex128) (c, s complex128) {
	if b == 0 {
		return 1, 0
	}
	if a == 0 {
		return 0, 1
	}
	na, nbv := cmplx.Abs(a), cmplx.Abs(b)
	t := math.Hypot(na, nbv)
	c = complex(na/t, 0)
	s = (a / complex(na, 0)) * conj(b) / complex(t, 0)
	return c, s
}

// GMRESDual is the dual-capable fallback rung: it solves the primal system
// A x = b and the dual A^dagger xd = bd with two independent restarted
// GMRES runs, preserving the z / 1/conj(z) node pairing of the ring
// contour (Sec. 3.2) at twice the matvec cost of one BiCGDual iteration
// stream — paid only for columns the BiCG rungs could not finish. The
// primal result carries the combined MatVecApplied count.
func GMRESDual(a, ad Apply, b, bd, x, xd []complex128, restart int, opts Options) (primal, dual Result) {
	primal = GMRES(a, b, x, restart, opts)
	dual = GMRES(ad, bd, xd, restart, opts)
	primal.MatVecApplied += dual.MatVecApplied
	return primal, dual
}
