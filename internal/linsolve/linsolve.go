// Package linsolve provides the iterative Krylov solvers of the CBS
// pipeline: the BiCG method with simultaneous dual-system solution (the
// paper's halving trick for the ring contour, Sec. 3.2) and CG for Hermitian
// systems (the OBM baseline's Green-function columns and the Poisson
// equation of the SCF substrate).
//
// It also implements the paper's load-balancing stopping rule for the
// middle (quadrature-point) parallel layer: "the BiCG method is stopped at
// over half of quadrature points" (Sec. 3.3), justified by the uniform
// convergence across quadrature points shown in Fig. 5.
package linsolve

import (
	"math"
	"sync"

	"cbs/internal/chaos"
	"cbs/internal/zlinalg"
)

// Apply computes out = A*v for a fixed matrix-free operator.
type Apply func(v, out []complex128)

// Options controls an iterative solve.
type Options struct {
	Tol     float64 // relative residual target (paper: 1e-10)
	MaxIter int     // hard iteration cap (0: 10*N)
	History bool    // record the per-iteration relative residuals
	Group   *GroupStop
	// LooseTol guards the majority rule: a solve only honours the group
	// stop once its own residual is below LooseTol (default 100*Tol, the
	// paper's observation that stragglers sit near 1e-8 when the majority
	// reaches 1e-10). Without the guard, solves scheduled after the
	// majority converged would abort unsolved.
	LooseTol float64

	// Chaos optionally injects deterministic faults (the resilience tests
	// and the chaos-smoke CI job); nil in production. ChaosSite identifies
	// this solve — quadrature point, first probe column of the block, and
	// recovery-ladder attempt — so injection decisions are reproducible
	// under any worker scheduling.
	Chaos     *chaos.Injector
	ChaosSite chaos.Site
}

// looseTol returns the effective straggler tolerance.
func (o Options) looseTol() float64 {
	if o.LooseTol > 0 {
		return o.LooseTol
	}
	return 100 * o.Tol
}

// Result reports the outcome of a solve.
type Result struct {
	Iterations    int
	Converged     bool    // relative residual reached Tol
	StoppedEarly  bool    // halted by the group majority rule
	Breakdown     bool    // Krylov breakdown (vanishing inner product)
	Residual      float64 // final primal relative residual
	DualResidual  float64 // final dual relative residual (BiCGDual only)
	History       []float64
	MatVecApplied int // number of operator applications (primal + dual)

	// Mixed-precision bookkeeping (BlockBiCGDualMixed only): refinement
	// steps taken, and whether refinement exhausted its budget without
	// reaching the target residual (the column then needs full-precision
	// recovery).
	RefineSteps  int
	RefineFailed bool
}

// defaultMaxIter bounds iterations when Options.MaxIter is zero.
func defaultMaxIter(n int) int { return 10*n + 100 }

// breakdownTol flags vanishing BiCG inner products.
const breakdownTol = 1e-290

// BiCGDual solves A x = b and, at the same time and almost the same cost,
// the dual system A^dagger xd = bd, using the two-sided Lanczos recurrences
// of BiCG (Saad, Iterative Methods, Sec. 7.3): the shadow direction already
// requires the A^dagger product, so updating xd alongside is free. With
// bd = b and A = P(z) this yields P(1/conj(z))^{-1} b, i.e. the
// inner-circle quadrature solution of the ring contour.
//
// x and xd are used as the initial guesses and overwritten with the
// solutions.
func BiCGDual(a, ad Apply, b, bd []complex128, x, xd []complex128, opts Options) Result {
	n := len(b)
	if len(bd) != n || len(x) != n || len(xd) != n {
		panic("linsolve: BiCGDual length mismatch")
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = defaultMaxIter(n)
	}
	res := Result{}

	r := make([]complex128, n)
	rd := make([]complex128, n)
	q := make([]complex128, n)
	qd := make([]complex128, n)

	// r = b - A x, rd = bd - A^dagger xd.
	a(x, q)
	ad(xd, qd)
	res.MatVecApplied += 2
	for i := 0; i < n; i++ {
		r[i] = b[i] - q[i]
		rd[i] = bd[i] - qd[i]
	}
	p := append([]complex128(nil), r...)
	pd := append([]complex128(nil), rd...)

	nb := zlinalg.Norm2(b)
	nbd := zlinalg.Norm2(bd)
	if nb == 0 {
		nb = 1
	}
	if nbd == 0 {
		nbd = 1
	}

	rho := zlinalg.Dot(rd, r)
	//cbs:chaossite bicg.breakdown
	if opts.Chaos.Breakdown(opts.ChaosSite) {
		// Injected Lanczos breakdown: the shadow inner product vanishes
		// before the first iteration (see internal/chaos).
		rho = 0
	}
	rel := zlinalg.Norm2(r) / nb
	relD := zlinalg.Norm2(rd) / nbd
	if opts.History {
		res.History = append(res.History, rel)
	}
	for iter := 0; iter < maxIter; iter++ {
		if rel <= opts.Tol && relD <= opts.Tol {
			res.Converged = true
			break
		}
		if opts.Group != nil && rel <= opts.looseTol() && relD <= opts.looseTol() && opts.Group.ShouldStop() {
			res.StoppedEarly = true
			break
		}
		if cabs2(rho) < breakdownTol {
			res.Breakdown = true
			break
		}
		a(p, q)
		ad(pd, qd)
		res.MatVecApplied += 2
		den := zlinalg.Dot(pd, q)
		if cabs2(den) < breakdownTol {
			res.Breakdown = true
			break
		}
		alpha := rho / den
		alphaC := conj(alpha)
		for i := 0; i < n; i++ {
			x[i] += alpha * p[i]
			xd[i] += alphaC * pd[i]
			r[i] -= alpha * q[i]
			rd[i] -= alphaC * qd[i]
		}
		rhoNew := zlinalg.Dot(rd, r)
		beta := rhoNew / rho
		betaC := conj(beta)
		for i := 0; i < n; i++ {
			p[i] = r[i] + beta*p[i]
			pd[i] = rd[i] + betaC*pd[i]
		}
		rho = rhoNew
		rel = zlinalg.Norm2(r) / nb
		relD = zlinalg.Norm2(rd) / nbd
		res.Iterations++
		if opts.History {
			res.History = append(res.History, rel)
		}
	}
	if rel <= opts.Tol && relD <= opts.Tol {
		res.Converged = true
	}
	res.Residual = rel
	res.DualResidual = relD
	if res.Converged && opts.Group != nil {
		opts.Group.MarkConverged()
	}
	return res
}

// BiCG solves the single system A x = b (the dual solution is discarded;
// the shadow system is seeded with b).
func BiCG(a, ad Apply, b, x []complex128, opts Options) Result {
	xd := make([]complex128, len(x))
	bd := append([]complex128(nil), b...)
	r := BiCGDual(a, ad, b, bd, x, xd, opts)
	// Single-system convergence only requires the primal residual.
	if r.Residual <= opts.Tol {
		r.Converged = true
	}
	return r
}

// CG solves the Hermitian system A x = b by conjugate gradients. The OBM
// baseline uses it (as in the paper) for the Green-function columns, where
// E - H00 is Hermitian but indefinite: CG can still converge there, and
// breakdown is reported so callers can fall back to BiCG.
func CG(a Apply, b, x []complex128, opts Options) Result {
	if len(x) != len(b) {
		panic("linsolve: CG length mismatch")
	}
	n := len(b)
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = defaultMaxIter(n)
	}
	res := Result{}
	r := make([]complex128, n)
	q := make([]complex128, n)
	a(x, q)
	res.MatVecApplied++
	for i := 0; i < n; i++ {
		r[i] = b[i] - q[i]
	}
	p := append([]complex128(nil), r...)
	nb := zlinalg.Norm2(b)
	if nb == 0 {
		nb = 1
	}
	rho := real(zlinalg.Dot(r, r))
	rel := math.Sqrt(rho) / nb
	if opts.History {
		res.History = append(res.History, rel)
	}
	for iter := 0; iter < maxIter; iter++ {
		if rel <= opts.Tol {
			res.Converged = true
			break
		}
		a(p, q)
		res.MatVecApplied++
		den := real(zlinalg.Dot(p, q))
		if math.Abs(den) < breakdownTol {
			res.Breakdown = true
			break
		}
		alpha := complex(rho/den, 0)
		for i := 0; i < n; i++ {
			x[i] += alpha * p[i]
			r[i] -= alpha * q[i]
		}
		rhoNew := real(zlinalg.Dot(r, r))
		beta := complex(rhoNew/rho, 0)
		for i := 0; i < n; i++ {
			p[i] = r[i] + beta*p[i]
		}
		rho = rhoNew
		rel = math.Sqrt(rhoNew) / nb
		res.Iterations++
		if opts.History {
			res.History = append(res.History, rel)
		}
	}
	if rel <= opts.Tol {
		res.Converged = true
	}
	res.Residual = rel
	return res
}

// conj is cmplx.Conj without the import (kept hot-path eligible).
//
//cbs:hotpath
func conj(z complex128) complex128 { return complex(real(z), -imag(z)) }

// cabs2 is the squared magnitude: the hot loops compare against squared
// thresholds instead of paying a sqrt per element.
//
//cbs:hotpath
func cabs2(z complex128) float64 { return real(z)*real(z) + imag(z)*imag(z) }

// GroupStop implements the paper's majority stopping rule across the
// quadrature points of one contour: once more than half of the group's
// members have converged, the remaining solves stop at their next check.
type GroupStop struct {
	mu        sync.Mutex
	total     int
	converged int
	enabled   bool
}

// NewGroupStop creates a controller for a group of total solves; when
// enabled is false the controller never requests a stop (pure bookkeeping).
func NewGroupStop(total int, enabled bool) *GroupStop {
	return &GroupStop{total: total, enabled: enabled}
}

// MarkConverged records one converged member.
func (g *GroupStop) MarkConverged() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.converged++
	g.mu.Unlock()
}

// ShouldStop reports whether stragglers should halt: strictly more than
// half of the group has converged.
func (g *GroupStop) ShouldStop() bool {
	if g == nil || !g.enabled {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return 2*g.converged > g.total
}

// Converged returns the number of converged members so far.
func (g *GroupStop) Converged() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.converged
}
