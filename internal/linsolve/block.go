package linsolve

import (
	"math"
)

// BlockApply computes out = A*V for an n x nb block stored row-major by
// row index (the nb column values of row i at v[i*nb:(i+1)*nb]).
type BlockApply func(v, out []complex128, nb int)

// Workspace holds the Krylov vectors and per-column bookkeeping of
// BlockBiCGDual so the hot solve loop allocates nothing: one workspace per
// worker is reused across all quadrature points. It replaces the six
// per-call vector allocations of BiCGDual.
type Workspace struct {
	n, nb int

	// Block Krylov vectors, each n*nb row-major.
	r, rd, p, pd, q, qd []complex128

	// Per-column scalars of the nb independent recurrences.
	rho, alpha, beta, dots []complex128
	nrmB, nrmBD, rel, relD []float64
	nrm2, nrm2d            []float64 // norm scratch (frozen columns keep rel)
	active                 []bool

	results []Result
}

// NewWorkspace allocates a workspace for blocks of n rows and nb columns.
func NewWorkspace(n, nb int) *Workspace {
	w := &Workspace{}
	w.Reserve(n, nb)
	return w
}

// Reserve grows the workspace to hold an n x nb solve; existing capacity is
// reused when sufficient, so alternating block widths does not thrash.
func (w *Workspace) Reserve(n, nb int) {
	w.n, w.nb = n, nb
	if need := n * nb; cap(w.r) < need {
		w.r = make([]complex128, need)
		w.rd = make([]complex128, need)
		w.p = make([]complex128, need)
		w.pd = make([]complex128, need)
		w.q = make([]complex128, need)
		w.qd = make([]complex128, need)
	}
	if cap(w.rho) < nb {
		w.rho = make([]complex128, nb)
		w.alpha = make([]complex128, nb)
		w.beta = make([]complex128, nb)
		w.dots = make([]complex128, nb)
		w.nrmB = make([]float64, nb)
		w.nrmBD = make([]float64, nb)
		w.rel = make([]float64, nb)
		w.relD = make([]float64, nb)
		w.nrm2 = make([]float64, nb)
		w.nrm2d = make([]float64, nb)
		w.active = make([]bool, nb)
		w.results = make([]Result, nb)
	}
}

// MemoryBytes reports the workspace's resident bytes (the block-solver
// analogue of the per-worker Krylov vectors in core.MemoryEstimate).
func (w *Workspace) MemoryBytes() int64 {
	return int64(6*cap(w.r))*16 + int64(cap(w.rho))*(4*16+4*8+1)
}

// blockDots computes dots[c] = <x_c, y_c> for every column of two row-major
// blocks in one pass (summation order over rows matches zlinalg.Dot).
//
//cbs:hotpath
func blockDots(dots []complex128, x, y []complex128, nb int) {
	for c := range dots {
		dots[c] = 0
	}
	n := len(x) / nb
	for i := 0; i < n; i++ {
		xo := x[i*nb : i*nb+nb]
		yo := y[i*nb : i*nb+nb]
		for c := range dots {
			dots[c] += conj(xo[c]) * yo[c]
		}
	}
}

// blockNorms computes nrm[c] = ||x_c|| for every column of a row-major block.
//
//cbs:hotpath
func blockNorms(nrm []float64, x []complex128, nb int) {
	for c := range nrm {
		nrm[c] = 0
	}
	n := len(x) / nb
	for i := 0; i < n; i++ {
		xo := x[i*nb : i*nb+nb]
		for c := range nrm {
			nrm[c] += cabs2(xo[c])
		}
	}
	for c := range nrm {
		nrm[c] = math.Sqrt(nrm[c])
	}
}

// BlockBiCGDual solves the nb independent primal systems A x_c = b_c and
// their duals A^dagger xd_c = bd_c with nb coupled-in-storage but
// mathematically independent dual BiCG recurrences sharing blocked matvecs:
// each iteration applies A and A^dagger once to the whole block, so the
// operator tables stream through memory once per iteration instead of once
// per column. Columns converge, stop early (per-column GroupStop in groups,
// which may be nil or hold nil entries) and break down independently: a
// finished column is masked out of the recurrence updates (its x_c, xd_c
// freeze) while the remaining columns keep iterating, exactly reproducing
// the per-column BiCGDual results.
//
// b, bd, x and xd are n x nb row-major blocks; x and xd hold the initial
// guesses and are overwritten with the solutions. With opts.History set the
// residual history of column 0 is recorded. The returned slice (one Result
// per column) aliases ws.results and is valid until the next solve on ws;
// ws may be nil, in which case a fresh workspace is allocated.
func BlockBiCGDual(a, ad BlockApply, b, bd, x, xd []complex128, nb int, opts Options, groups []*GroupStop, ws *Workspace) []Result {
	if nb < 1 || len(b)%nb != 0 {
		panic("linsolve: BlockBiCGDual bad block width")
	}
	n := len(b) / nb
	if len(bd) != n*nb || len(x) != n*nb || len(xd) != n*nb {
		panic("linsolve: BlockBiCGDual length mismatch")
	}
	if groups != nil && len(groups) != nb {
		panic("linsolve: BlockBiCGDual groups length mismatch")
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = defaultMaxIter(n)
	}
	if ws == nil {
		ws = NewWorkspace(n, nb)
	} else {
		ws.Reserve(n, nb)
	}
	r, rd := ws.r[:n*nb], ws.rd[:n*nb]
	p, pd := ws.p[:n*nb], ws.pd[:n*nb]
	q, qd := ws.q[:n*nb], ws.qd[:n*nb]
	rho, alpha, beta, dots := ws.rho[:nb], ws.alpha[:nb], ws.beta[:nb], ws.dots[:nb]
	nrmB, nrmBD := ws.nrmB[:nb], ws.nrmBD[:nb]
	rel, relD := ws.rel[:nb], ws.relD[:nb]
	nrm2, nrm2d := ws.nrm2[:nb], ws.nrm2d[:nb]
	active := ws.active[:nb]
	results := ws.results[:nb]

	group := func(c int) *GroupStop {
		if groups == nil {
			return nil
		}
		return groups[c]
	}

	// r = b - A x, rd = bd - A^dagger xd.
	a(x, q, nb)
	ad(xd, qd, nb)
	for c := range results {
		results[c] = Result{MatVecApplied: 2}
		active[c] = true
	}
	for i := range r {
		r[i] = b[i] - q[i]
		rd[i] = bd[i] - qd[i]
	}
	copy(p, r)
	copy(pd, rd)

	blockNorms(nrmB, b, nb)
	blockNorms(nrmBD, bd, nb)
	for c := range nrmB {
		if nrmB[c] == 0 {
			nrmB[c] = 1
		}
		if nrmBD[c] == 0 {
			nrmBD[c] = 1
		}
	}
	blockDots(rho, rd, r, nb)
	if opts.Chaos != nil {
		// Injected per-column Lanczos breakdowns (deterministic per
		// (point, column, attempt) site; see internal/chaos).
		for c := range rho {
			s := opts.ChaosSite
			s.Col += c
			//cbs:chaossite bicg.block-breakdown
			if opts.Chaos.Breakdown(s) {
				rho[c] = 0
			}
		}
	}
	blockNorms(rel, r, nb)
	blockNorms(relD, rd, nb)
	for c := range rel {
		rel[c] /= nrmB[c]
		relD[c] /= nrmBD[c]
	}
	if opts.History {
		results[0].History = append(results[0].History, rel[0])
	}

	remaining := nb
	for iter := 0; iter < maxIter && remaining > 0; iter++ {
		// Per-column state checks, mirroring the single-vector loop head.
		for c := 0; c < nb; c++ {
			if !active[c] {
				continue
			}
			if rel[c] <= opts.Tol && relD[c] <= opts.Tol {
				results[c].Converged = true
				if g := group(c); g != nil {
					g.MarkConverged()
				}
				active[c] = false
				remaining--
				continue
			}
			if g := group(c); g != nil && rel[c] <= opts.looseTol() && relD[c] <= opts.looseTol() && g.ShouldStop() {
				results[c].StoppedEarly = true
				active[c] = false
				remaining--
				continue
			}
			if cabs2(rho[c]) < breakdownTol {
				results[c].Breakdown = true
				active[c] = false
				remaining--
			}
		}
		if remaining == 0 {
			break
		}
		a(p, q, nb)
		ad(pd, qd, nb)
		blockDots(dots, pd, q, nb)
		for c := 0; c < nb; c++ {
			alpha[c] = 0
			if !active[c] {
				continue
			}
			results[c].MatVecApplied += 2
			if cabs2(dots[c]) < breakdownTol {
				results[c].Breakdown = true
				active[c] = false
				remaining--
				continue
			}
			alpha[c] = rho[c] / dots[c]
		}
		if remaining == 0 {
			break
		}
		updateSolutions(x, xd, r, rd, p, pd, q, qd, alpha, n, nb)
		blockDots(dots, rd, r, nb)
		for c := 0; c < nb; c++ {
			beta[c] = 0
			if !active[c] {
				continue
			}
			beta[c] = dots[c] / rho[c]
			rho[c] = dots[c]
		}
		updateDirections(p, pd, r, rd, beta, active, n, nb)
		blockNorms(nrm2, r, nb)
		blockNorms(nrm2d, rd, nb)
		for c := 0; c < nb; c++ {
			if !active[c] {
				continue
			}
			rel[c] = nrm2[c] / nrmB[c]
			relD[c] = nrm2d[c] / nrmBD[c]
			results[c].Iterations++
		}
		if opts.History && active[0] {
			results[0].History = append(results[0].History, rel[0])
		}
	}
	for c := 0; c < nb; c++ {
		if active[c] && rel[c] <= opts.Tol && relD[c] <= opts.Tol {
			results[c].Converged = true
			if g := group(c); g != nil {
				g.MarkConverged()
			}
		}
		results[c].Residual = rel[c]
		results[c].DualResidual = relD[c]
	}
	return results
}

// updateSolutions is the fused alpha-step of one BlockBiCGDual iteration:
// one pass over the block updates x, xd, r and rd of every still-active
// column (alpha = 0 freezes the rest, and frozen r/rd are untouched because
// alpha is exactly zero).
//
//cbs:hotpath
func updateSolutions(x, xd, r, rd, p, pd, q, qd, alpha []complex128, n, nb int) {
	for i := 0; i < n; i++ {
		o := i * nb
		for c := range alpha {
			al := alpha[c]
			if al == 0 {
				continue
			}
			alC := conj(al)
			x[o+c] += al * p[o+c]
			xd[o+c] += alC * pd[o+c]
			r[o+c] -= al * q[o+c]
			rd[o+c] -= alC * qd[o+c]
		}
	}
}

// updateDirections is the fused beta-step: p = r + beta*p and its dual,
// skipping frozen columns.
//
//cbs:hotpath
func updateDirections(p, pd, r, rd, beta []complex128, active []bool, n, nb int) {
	for i := 0; i < n; i++ {
		o := i * nb
		for c := range beta {
			if !active[c] {
				continue
			}
			p[o+c] = r[o+c] + beta[c]*p[o+c]
			pd[o+c] = rd[o+c] + conj(beta[c])*pd[o+c]
		}
	}
}
