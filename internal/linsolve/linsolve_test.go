package linsolve

import (
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"

	"cbs/internal/zlinalg"
)

// matApply wraps a dense matrix as an Apply.
func matApply(m *zlinalg.Matrix) Apply {
	return func(v, out []complex128) {
		copy(out, zlinalg.MulVec(m, v))
	}
}

// randDiagDominant builds a well-conditioned non-Hermitian test matrix.
func randDiagDominant(rng *rand.Rand, n int) *zlinalg.Matrix {
	m := zlinalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, complex(rng.Float64()-0.5, rng.Float64()-0.5))
		}
		m.Set(i, i, m.At(i, i)+complex(float64(n), 0.5*float64(n)))
	}
	return m
}

func randVec(rng *rand.Rand, n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return v
}

func TestBiCGDualSolvesBothSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 40
	a := randDiagDominant(rng, n)
	ah := a.ConjTranspose()
	b := randVec(rng, n)
	bd := randVec(rng, n)
	x := make([]complex128, n)
	xd := make([]complex128, n)
	res := BiCGDual(matApply(a), matApply(ah), b, bd, x, xd, Options{Tol: 1e-12})
	if !res.Converged {
		t.Fatalf("BiCGDual did not converge: %+v", res)
	}
	// Primal: A x = b.
	r := zlinalg.MulVec(a, x)
	for i := range r {
		r[i] -= b[i]
	}
	if nr := zlinalg.Norm2(r) / zlinalg.Norm2(b); nr > 1e-10 {
		t.Errorf("primal residual %g", nr)
	}
	// Dual: A^dagger xd = bd.
	rd := zlinalg.MulVec(ah, xd)
	for i := range rd {
		rd[i] -= bd[i]
	}
	if nr := zlinalg.Norm2(rd) / zlinalg.Norm2(bd); nr > 1e-10 {
		t.Errorf("dual residual %g (the paper's halving trick must hold)", nr)
	}
}

func TestBiCGDualMatchesDirectSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 25
	a := randDiagDominant(rng, n)
	b := randVec(rng, n)
	x := make([]complex128, n)
	xd := make([]complex128, n)
	res := BiCGDual(matApply(a), matApply(a.ConjTranspose()), b, b, x, xd, Options{Tol: 1e-13})
	if !res.Converged {
		t.Fatal("no convergence")
	}
	lu, err := zlinalg.FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	want := lu.SolveVec(b)
	for i := range x {
		if cmplx.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestBiCGHistoryMonotoneOverall(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 30
	a := randDiagDominant(rng, n)
	b := randVec(rng, n)
	x := make([]complex128, n)
	res := BiCG(matApply(a), matApply(a.ConjTranspose()), b, x, Options{Tol: 1e-11, History: true})
	if !res.Converged {
		t.Fatal("no convergence")
	}
	if len(res.History) < 2 {
		t.Fatal("history not recorded")
	}
	if res.History[0] < res.History[len(res.History)-1] {
		t.Error("residual did not decrease overall")
	}
	if res.History[len(res.History)-1] > 1e-11 {
		t.Error("final history entry above tolerance")
	}
}

func TestBiCGMaxIterCap(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 30
	a := randDiagDominant(rng, n)
	b := randVec(rng, n)
	x := make([]complex128, n)
	res := BiCG(matApply(a), matApply(a.ConjTranspose()), b, x, Options{Tol: 1e-30, MaxIter: 3})
	if res.Converged {
		t.Error("cannot converge to 1e-30 in 3 iterations")
	}
	if res.Iterations > 3 {
		t.Errorf("iterations %d exceed cap", res.Iterations)
	}
}

func TestCGSolvesHermitianSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 30
	// Hermitian positive definite: A = M^dagger M + I.
	m := zlinalg.NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
	}
	a := zlinalg.Add(zlinalg.Mul(m.ConjTranspose(), m), zlinalg.Identity(n))
	b := randVec(rng, n)
	x := make([]complex128, n)
	res := CG(matApply(a), b, x, Options{Tol: 1e-12})
	if !res.Converged {
		t.Fatalf("CG did not converge: %+v", res)
	}
	r := zlinalg.MulVec(a, x)
	for i := range r {
		r[i] -= b[i]
	}
	if nr := zlinalg.Norm2(r) / zlinalg.Norm2(b); nr > 1e-10 {
		t.Errorf("CG residual %g", nr)
	}
}

func TestCGIndefiniteHermitian(t *testing.T) {
	// CG on an indefinite Hermitian system (the OBM case, E inside the
	// spectrum) usually still converges; verify on a shifted Laplacian-like
	// matrix.
	n := 50
	a := zlinalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, complex(2.0-1.3, 0)) // shift E=1.3 inside [0,4]
		if i > 0 {
			a.Set(i, i-1, -1)
			a.Set(i-1, i, -1)
		}
	}
	rng := rand.New(rand.NewSource(6))
	b := randVec(rng, n)
	x := make([]complex128, n)
	res := CG(matApply(a), b, x, Options{Tol: 1e-10, MaxIter: 5000})
	if res.Breakdown {
		t.Skip("CG breakdown on indefinite system (acceptable; caller falls back)")
	}
	if !res.Converged {
		t.Fatalf("CG failed on indefinite system: %+v", res)
	}
	r := zlinalg.MulVec(a, x)
	for i := range r {
		r[i] -= b[i]
	}
	if nr := zlinalg.Norm2(r) / zlinalg.Norm2(b); nr > 1e-8 {
		t.Errorf("residual %g", nr)
	}
}

func TestGroupStopMajorityRule(t *testing.T) {
	g := NewGroupStop(8, true)
	for i := 0; i < 4; i++ {
		g.MarkConverged()
	}
	if g.ShouldStop() {
		t.Error("exactly half converged must not stop (rule is strictly over half)")
	}
	g.MarkConverged()
	if !g.ShouldStop() {
		t.Error("5 of 8 converged must stop stragglers")
	}
	if g.Converged() != 5 {
		t.Errorf("Converged() = %d, want 5", g.Converged())
	}
	disabled := NewGroupStop(2, false)
	disabled.MarkConverged()
	disabled.MarkConverged()
	if disabled.ShouldStop() {
		t.Error("disabled controller must never stop")
	}
	var nilStop *GroupStop
	nilStop.MarkConverged() // must not panic
	if nilStop.ShouldStop() {
		t.Error("nil controller must never stop")
	}
}

func TestGroupStopConcurrent(t *testing.T) {
	g := NewGroupStop(100, true)
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.MarkConverged()
			_ = g.ShouldStop()
		}()
	}
	wg.Wait()
	if g.Converged() != 100 {
		t.Errorf("lost updates: %d", g.Converged())
	}
}

func TestBiCGDualEarlyStopViaGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 40
	a := randDiagDominant(rng, n)
	b := randVec(rng, n)
	g := NewGroupStop(2, true)
	g.MarkConverged()
	g.MarkConverged() // majority already reached
	x := make([]complex128, n)
	xd := make([]complex128, n)
	res := BiCGDual(matApply(a), matApply(a.ConjTranspose()), b, b, x, xd,
		Options{Tol: 1e-14, LooseTol: 1e30, Group: g})
	if !res.StoppedEarly {
		t.Errorf("expected early stop, got %+v", res)
	}
	if res.Iterations != 0 {
		t.Errorf("early stop should occur before the first iteration, did %d", res.Iterations)
	}
}
