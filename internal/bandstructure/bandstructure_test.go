package bandstructure

import (
	"math"
	"testing"

	"cbs/internal/hamiltonian"
	"cbs/internal/lattice"
)

func smallAl(t *testing.T) *hamiltonian.Operator {
	t.Helper()
	st, err := lattice.AlBulk100(1)
	if err != nil {
		t.Fatal(err)
	}
	op, err := hamiltonian.Build(st, hamiltonian.Config{Nx: 6, Ny: 6, Nz: 8, Nf: 4})
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func TestBandsRealAndOrdered(t *testing.T) {
	op := smallAl(t)
	ks := UniformK(op, 5)
	bands, err := Bands(op, ks, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(bands) != 5 {
		t.Fatalf("%d k points returned", len(bands))
	}
	for i, b := range bands {
		if len(b) != 12 {
			t.Fatalf("k %d: %d bands, want 12", i, len(b))
		}
		for j := 1; j < len(b); j++ {
			if b[j] < b[j-1]-1e-12 {
				t.Errorf("k %d: bands not ascending at %d", i, j)
			}
		}
	}
}

func TestBandsContinuity(t *testing.T) {
	// E_n(k) must vary smoothly with k: adjacent fine-grid samples stay
	// close.
	op := smallAl(t)
	ks := UniformK(op, 9)
	bands, err := Bands(op, ks, 6)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 6; n++ {
		for i := 1; i < len(ks); i++ {
			if d := math.Abs(bands[i][n] - bands[i-1][n]); d > 0.2 {
				t.Errorf("band %d jumps by %g hartree between k samples %d-%d", n, d, i-1, i)
			}
		}
	}
}

func TestTimeReversalSymmetry(t *testing.T) {
	// E_n(k) = E_n(-k) for our real Hamiltonian.
	op := smallAl(t)
	a := op.G.Lz()
	k := 0.3 * math.Pi / a
	plus, err := Bands(op, []float64{k}, 8)
	if err != nil {
		t.Fatal(err)
	}
	minus, err := Bands(op, []float64{-k}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for n := range plus[0] {
		if d := math.Abs(plus[0][n] - minus[0][n]); d > 1e-9 {
			t.Errorf("band %d: E(k)-E(-k) = %g", n, d)
		}
	}
}

func TestValenceElectrons(t *testing.T) {
	op := smallAl(t)
	ne, err := ValenceElectrons(op)
	if err != nil {
		t.Fatal(err)
	}
	if ne != 12 { // 4 Al atoms x 3 valence electrons
		t.Errorf("valence electrons = %g, want 12", ne)
	}
}

func TestFermiLevelWithinSpectrum(t *testing.T) {
	op := smallAl(t)
	ef, err := FermiLevel(op, 4)
	if err != nil {
		t.Fatal(err)
	}
	bands, err := Bands(op, UniformK(op, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	lo := bands[0][0]
	hi := bands[0][len(bands[0])-1]
	if ef <= lo || ef >= hi {
		t.Errorf("Fermi level %g outside the band range [%g, %g]", ef, lo, hi)
	}
	// Aluminum is a metal: EF must sit above the lowest few bands.
	if ef <= bands[0][1] {
		t.Errorf("Fermi level %g implausibly low", ef)
	}
}

func TestUniformK(t *testing.T) {
	op := smallAl(t)
	ks := UniformK(op, 5)
	if ks[0] != 0 {
		t.Error("k grid must start at Gamma")
	}
	a := op.G.Lz()
	if math.Abs(ks[4]-math.Pi/a) > 1e-14 {
		t.Error("k grid must end at the zone boundary")
	}
	one := UniformK(op, 1)
	if len(one) != 1 || one[0] != 0 {
		t.Error("single-point grid should be Gamma")
	}
}

func TestBandsWithVectorsEigenpairs(t *testing.T) {
	op := smallAl(t)
	ks := []float64{0.2}
	vals, vecs, err := BandsWithVectors(op, ks)
	if err != nil {
		t.Fatal(err)
	}
	if vecs[0].Rows != op.N() || len(vals[0]) != op.N() {
		t.Fatal("shape mismatch")
	}
}
