// Package bandstructure computes the conventional band structure E_n(k)
// from the same Hamiltonian blocks the CBS solver uses: for a real wave
// vector k the Bloch Hamiltonian H(k) = e^{-ika} H- + H0 + e^{ika} H+ is
// Hermitian and is diagonalized densely. These are the red reference curves
// of the paper's Fig. 6 and the source of the Fermi-level estimate.
package bandstructure

import (
	"fmt"
	"math"
	"sort"

	"cbs/internal/eigsparse"
	"cbs/internal/hamiltonian"
	"cbs/internal/pseudo"
	"cbs/internal/qep"
	"cbs/internal/zlinalg"
)

// Bands diagonalizes H(k) at each k (in units of 1/bohr) and returns the
// lowest nbands eigenvalues (hartree), ascending, per k. nbands <= 0 means
// all.
func Bands(op *hamiltonian.Operator, ks []float64, nbands int) ([][]float64, error) {
	a := op.G.Lz()
	out := make([][]float64, len(ks))
	for i, k := range ks {
		lam := qep.LambdaFromK(complex(k, 0), a)
		h := op.BlochMatrix(lam)
		vals, _, err := zlinalg.EigHermitian(h)
		if err != nil {
			return nil, fmt.Errorf("bandstructure: k=%g: %w", k, err)
		}
		if nbands > 0 && nbands < len(vals) {
			vals = vals[:nbands]
		}
		out[i] = vals
		_ = i
	}
	return out, nil
}

// BandsWithVectors also returns the eigenvectors at each k.
func BandsWithVectors(op *hamiltonian.Operator, ks []float64) ([][]float64, []*zlinalg.Matrix, error) {
	a := op.G.Lz()
	vals := make([][]float64, len(ks))
	vecs := make([]*zlinalg.Matrix, len(ks))
	for i, k := range ks {
		lam := qep.LambdaFromK(complex(k, 0), a)
		h := op.BlochMatrix(lam)
		ev, evec, err := zlinalg.EigHermitian(h)
		if err != nil {
			return nil, nil, err
		}
		vals[i] = ev
		vecs[i] = evec
	}
	return vals, vecs, nil
}

// UniformK returns nk wave vectors spanning the first Brillouin zone
// [0, pi/a] (time-reversal symmetric half).
func UniformK(op *hamiltonian.Operator, nk int) []float64 {
	a := op.G.Lz()
	ks := make([]float64, nk)
	for i := range ks {
		ks[i] = math.Pi / a * float64(i) / float64(nk-1)
	}
	if nk == 1 {
		ks[0] = 0
	}
	return ks
}

// LowestBands computes the nev lowest bands at each k with the sparse
// LOBPCG eigensolver on the matrix-free Bloch operator -- the path for
// cells too large to diagonalize densely.
func LowestBands(op *hamiltonian.Operator, ks []float64, nev int) ([][]float64, error) {
	a := op.G.Lz()
	n := op.N()
	out := make([][]float64, len(ks))
	scratch := make([]complex128, n)
	for i, k := range ks {
		lam := qep.LambdaFromK(complex(k, 0), a)
		apply := func(v, o []complex128) { op.ApplyBloch(lam, v, o, scratch) }
		// Chebyshev-filtered subspace iteration (the production real-space
		// DFT eigensolver). Ritz values converge quadratically in the
		// residual, so a modest target already gives band energies far
		// below the Fermi-filling resolution.
		res, err := eigsparse.LowestChebyshev(apply, n, nev,
			eigsparse.ChebOptions{Tol: 1e-3, MaxOuter: 60, Degree: 12, Seed: int64(i)})
		if err != nil {
			return nil, fmt.Errorf("bandstructure: sparse bands at k=%g: %w", k, err)
		}
		out[i] = res.Values
	}
	return out, nil
}

// ValenceElectrons sums the valence charges of the structure's atoms.
func ValenceElectrons(op *hamiltonian.Operator) (float64, error) {
	var ne float64
	for _, at := range op.Structure.Atoms {
		sp, err := pseudo.Lookup(at.Species)
		if err != nil {
			return 0, err
		}
		ne += sp.Zval
	}
	return ne, nil
}

// denseFermiLimit is the dimension above which FermiLevel switches from
// dense diagonalization to the sparse (LOBPCG) eigensolver: dense O(N^3)
// work becomes prohibitive long before the occupied subspace does.
const denseFermiLimit = 1200

// FermiLevel estimates the Fermi energy (hartree) by filling the valence
// electrons (2 per band per k, spin degenerate) over a uniform k sample.
// Large cells use the sparse eigensolver for the lowest bands only.
func FermiLevel(op *hamiltonian.Operator, nk int) (float64, error) {
	ne, err := ValenceElectrons(op)
	if err != nil {
		return 0, err
	}
	if nk < 1 {
		nk = 4
	}
	ks := UniformK(op, nk)
	var bands [][]float64
	if op.N() > denseFermiLimit {
		nev := int(math.Ceil(ne/2)) + 6
		bands, err = LowestBands(op, ks, nev)
	} else {
		bands, err = Bands(op, ks, 0)
	}
	if err != nil {
		return 0, err
	}
	// Pool all band energies; each level holds 2/nk electrons.
	var all []float64
	for _, b := range bands {
		all = append(all, b...)
	}
	sort.Float64s(all)
	perLevel := 2.0 / float64(len(ks))
	need := ne
	for _, e := range all {
		need -= perLevel
		if need <= 1e-9 {
			return e, nil
		}
	}
	return 0, fmt.Errorf("bandstructure: not enough bands to hold %g electrons", ne)
}
