// Package transport post-processes complex-band-structure scans into the
// quantities that motivate the paper's introduction: tunneling decay
// constants (the evanescent states' imaginary wave vectors govern electron
// tunneling through barriers and junctions), WKB-style transmission
// estimates, and branch points -- the energies where two evanescent
// branches merge, whose migration under bundling is the physics observation
// of Fig. 11.
package transport

import (
	"math"
	"sort"

	"cbs/internal/core"
)

// DefaultPropagatingTol is the default classification margin: a Bloch
// factor with ||lambda| - 1| below it counts as a propagating state.
// Exported so downstream consumers of the classification (internal/negf's
// lead-mode separation) share one convention.
const DefaultPropagatingTol = 1e-4

// Options tunes the decay-profile classification.
type Options struct {
	// PropagatingTol is the ||lambda| - 1| margin below which a state is
	// propagating; 0 means DefaultPropagatingTol. Solves with loose
	// residual targets put numerically-on-shell states slightly off the
	// unit circle, and a barrier NEGF run may want a tighter margin so
	// slow evanescent branches are not misread as open channels.
	PropagatingTol float64
}

func (o Options) tol() float64 {
	if o.PropagatingTol > 0 {
		return o.PropagatingTol
	}
	return DefaultPropagatingTol
}

// Point is the decay profile at one energy.
type Point struct {
	E           float64 // energy (hartree)
	Beta        float64 // smallest evanescent decay constant min |Im k| (1/bohr); 0 if no evanescent states
	NPropagate  int     // propagating channels
	NEvanescent int     // evanescent states in the annulus
}

// DecayProfile reduces a CBS energy scan to the slowest-decay constant
// beta(E) with the default classification margin: the dominant tunneling
// channel. Beta reports the slowest evanescent decay even at energies that
// also carry propagating channels — NEGF needs the tunneling branch under
// an open band, and NPropagate already tells ballistic energies apart.
func DecayProfile(results []*core.Result) []Point {
	return DecayProfileWith(results, Options{})
}

// DecayProfileWith is DecayProfile with explicit classification options.
func DecayProfileWith(results []*core.Result, o Options) []Point {
	tol := o.tol()
	out := make([]Point, 0, len(results))
	for _, r := range results {
		p := Point{E: r.Energy}
		minBeta := math.Inf(1)
		for _, pair := range r.Pairs {
			mag := math.Hypot(real(pair.Lambda), imag(pair.Lambda))
			if math.Abs(mag-1) < tol {
				p.NPropagate++
				continue
			}
			p.NEvanescent++
			if beta := math.Abs(imag(pair.K)); beta < minBeta {
				minBeta = beta
			}
		}
		if !math.IsInf(minBeta, 1) {
			p.Beta = minBeta
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].E < out[j].E })
	return out
}

// Transmission estimates the WKB tunneling transmission through a barrier
// of the given thickness (bohr) at one profile point: T ~ exp(-2*beta*d);
// 1 for energies with open channels.
func Transmission(p Point, thickness float64) float64 {
	if p.NPropagate > 0 || p.Beta == 0 {
		return 1
	}
	return math.Exp(-2 * p.Beta * thickness)
}

// ComplexBandGap returns the maximum of beta(E) over the gap region (the
// "loop height" of the imaginary band connecting valence and conduction
// bands) and the energy where it is attained. Returns ok=false when the
// profile has no evanescent-only region.
func ComplexBandGap(profile []Point) (eAt, betaMax float64, ok bool) {
	for _, p := range profile {
		if p.NPropagate > 0 || p.Beta == 0 {
			continue
		}
		if p.Beta > betaMax {
			betaMax = p.Beta
			eAt = p.E
			ok = true
		}
	}
	return eAt, betaMax, ok
}

// BranchPoints finds the interior local maxima of beta(E): the energies
// where two evanescent branches merge (dE/dk = 0 on the imaginary band, the
// red dot of Fig. 11a). Plateau maxima report their left edge.
func BranchPoints(profile []Point) []float64 {
	var out []float64
	for i := 1; i+1 < len(profile); i++ {
		p := profile[i]
		if p.NPropagate > 0 || p.Beta == 0 {
			continue
		}
		if profile[i-1].Beta < p.Beta && p.Beta >= profile[i+1].Beta {
			out = append(out, p.E)
		}
	}
	return out
}

// GapEdges returns the lowest and highest energies of the evanescent-only
// window around the given energy (a band-gap detector on the scan grid).
// ok is false when e lies in a region with open channels.
func GapEdges(profile []Point, e float64) (lo, hi float64, ok bool) {
	idx := -1
	for i, p := range profile {
		if p.E <= e {
			idx = i
		}
	}
	if idx < 0 || profile[idx].NPropagate > 0 {
		return 0, 0, false
	}
	lo, hi = profile[idx].E, profile[idx].E
	for i := idx; i >= 0 && profile[i].NPropagate == 0; i-- {
		lo = profile[i].E
	}
	for i := idx; i < len(profile) && profile[i].NPropagate == 0; i++ {
		hi = profile[i].E
	}
	return lo, hi, true
}
