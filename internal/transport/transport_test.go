package transport

import (
	"math"
	"math/cmplx"
	"testing"

	"cbs/internal/core"
)

// synth builds a synthetic scan result at energy e with the given complex
// wave vectors (a = 1 for simplicity).
func synth(e float64, ks ...complex128) *core.Result {
	r := &core.Result{Energy: e}
	for _, k := range ks {
		r.Pairs = append(r.Pairs, core.Eigenpair{
			Lambda: cmplx.Exp(complex(0, 1) * k),
			K:      k,
		})
	}
	return r
}

func TestDecayProfileClassification(t *testing.T) {
	results := []*core.Result{
		synth(0.0, complex(0.3, 0), complex(0.1, 0.5)),  // 1 propagating + 1 evanescent
		synth(0.1, complex(0.2, 0.4), complex(0, 0.25)), // gap: two evanescent
		synth(-0.1), // nothing found
	}
	prof := DecayProfile(results)
	if len(prof) != 3 {
		t.Fatalf("profile length %d", len(prof))
	}
	// Sorted by energy.
	if prof[0].E != -0.1 || prof[2].E != 0.1 {
		t.Fatalf("profile not sorted: %+v", prof)
	}
	// Energy 0.0: one open channel, and Beta still reports the coexisting
	// evanescent branch (Im k = 0.5) — the tunneling information NEGF needs.
	if prof[1].NPropagate != 1 || prof[1].NEvanescent != 1 || math.Abs(prof[1].Beta-0.5) > 1e-12 {
		t.Errorf("open-channel point wrong: %+v", prof[1])
	}
	// Energy 0.1: gap with min decay 0.25.
	if prof[2].NPropagate != 0 || math.Abs(prof[2].Beta-0.25) > 1e-12 {
		t.Errorf("gap point wrong: %+v", prof[2])
	}
	// Energy -0.1: nothing in the annulus, Beta stays 0.
	if prof[0].Beta != 0 || prof[0].NPropagate != 0 || prof[0].NEvanescent != 0 {
		t.Errorf("empty point wrong: %+v", prof[0])
	}
}

func TestDecayProfileConfigurableTol(t *testing.T) {
	// A state at |lambda| = e^{-1e-3}: evanescent under the default margin,
	// propagating under a loose 1e-2 margin.
	results := []*core.Result{synth(0.0, complex(0.4, 1e-3))}
	strict := DecayProfileWith(results, Options{})
	if strict[0].NPropagate != 0 || strict[0].NEvanescent != 1 || math.Abs(strict[0].Beta-1e-3) > 1e-15 {
		t.Errorf("default margin misclassified: %+v", strict[0])
	}
	loose := DecayProfileWith(results, Options{PropagatingTol: 1e-2})
	if loose[0].NPropagate != 1 || loose[0].NEvanescent != 0 || loose[0].Beta != 0 {
		t.Errorf("loose margin misclassified: %+v", loose[0])
	}
}

func TestTransmission(t *testing.T) {
	open := Point{NPropagate: 1}
	if Transmission(open, 10) != 1 {
		t.Error("open channel must transmit fully")
	}
	gap := Point{Beta: 0.2}
	want := math.Exp(-2 * 0.2 * 5)
	if got := Transmission(gap, 5); math.Abs(got-want) > 1e-15 {
		t.Errorf("T = %g, want %g", got, want)
	}
	// Thicker barrier transmits less.
	if Transmission(gap, 10) >= Transmission(gap, 5) {
		t.Error("transmission must decay with thickness")
	}
}

func TestComplexBandGapAndBranchPoints(t *testing.T) {
	// A gap from E=0.1..0.5 with a beta loop peaking at E=0.3.
	var results []*core.Result
	for i := 0; i <= 6; i++ {
		e := float64(i) * 0.1
		switch {
		case e < 0.05 || e > 0.55:
			results = append(results, synth(e, complex(0.3, 0))) // metallic
		default:
			beta := 0.4 - math.Abs(e-0.3) // tent peaking at 0.3
			results = append(results, synth(e, complex(0.0, beta)))
		}
	}
	prof := DecayProfile(results)
	eAt, betaMax, ok := ComplexBandGap(prof)
	if !ok {
		t.Fatal("gap not detected")
	}
	if math.Abs(eAt-0.3) > 1e-12 || math.Abs(betaMax-0.4) > 1e-12 {
		t.Errorf("gap peak at E=%g beta=%g, want 0.3/0.4", eAt, betaMax)
	}
	bps := BranchPoints(prof)
	if len(bps) != 1 || math.Abs(bps[0]-0.3) > 1e-12 {
		t.Errorf("branch points %v, want [0.3]", bps)
	}
}

func TestGapEdges(t *testing.T) {
	var results []*core.Result
	for i := 0; i <= 10; i++ {
		e := float64(i) * 0.1
		if e > 0.25 && e < 0.75 {
			results = append(results, synth(e, complex(0, 0.3)))
		} else {
			results = append(results, synth(e, complex(0.5, 0)))
		}
	}
	prof := DecayProfile(results)
	lo, hi, ok := GapEdges(prof, 0.5)
	if !ok {
		t.Fatal("gap not found at E=0.5")
	}
	if math.Abs(lo-0.3) > 1e-12 || math.Abs(hi-0.7) > 1e-12 {
		t.Errorf("gap edges [%g, %g], want [0.3, 0.7]", lo, hi)
	}
	if _, _, ok := GapEdges(prof, 0.1); ok {
		t.Error("metallic energy must not report a gap")
	}
}

func TestNoGapSystems(t *testing.T) {
	prof := DecayProfile([]*core.Result{synth(0, complex(0.3, 0))})
	if _, _, ok := ComplexBandGap(prof); ok {
		t.Error("metal must not report a complex band gap")
	}
	if bps := BranchPoints(prof); len(bps) != 0 {
		t.Errorf("metal reported branch points %v", bps)
	}
}
