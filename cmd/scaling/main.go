// scaling regenerates the paper's parallel performance study:
//
//	-fig8    strong scaling of the three hierarchy layers, small system
//	         ((8,0) CNT, 32 atoms) -- measured with goroutines up to the
//	         host's cores AND replayed on the Oakforest-PACS machine model
//	         at the paper's process counts,
//	-fig9    the same for the medium system (BN-doped, 1024 atoms;
//	         model-only at full scale, measured at reduced scale),
//	-fig10   middle+bottom layers for the large system (10240 atoms,
//	         model-only),
//	-table2  the in-node OpenMP x domain split of 1000 BiCG iterations.
//
// Measured parts run a genuinely parallel solve (goroutine pools over
// right-hand sides and quadrature points, channel-based message passing in
// the domain layer); the machine model extrapolates the identical schedule
// to node counts this host does not have (see DESIGN.md).
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"cbs"
	"cbs/internal/cluster"
	"cbs/internal/units"
)

func main() {
	fig8 := flag.Bool("fig8", false, "small-system layer scaling")
	fig9 := flag.Bool("fig9", false, "medium-system layer scaling")
	fig10 := flag.Bool("fig10", false, "large-system scaling (model only)")
	table2 := flag.Bool("table2", false, "in-node split study")
	nxy := flag.Int("nxy", 18, "transverse grid for measured runs")
	nz := flag.Int("nz", 16, "axial grid for measured runs")
	flag.Parse()
	if !*fig8 && !*fig9 && !*fig10 && !*table2 {
		*fig8 = true
		*table2 = true
	}

	tube, err := cbs.CNT(8, 0, units.AngstromToBohr(3.2))
	if err != nil {
		log.Fatal(err)
	}
	machine := cluster.OakforestPACS()

	if *fig8 {
		fmt.Println("==== Fig. 8: (8,0) CNT, 32 atoms ====")
		model := mustModel(tube, cbs.GridConfig{Nx: *nxy, Ny: *nxy, Nz: *nz, Nf: 4})
		measuredLayers(model)
		modelLayers(machine, cluster.FromOperator(model.Op, 32, 64, 3000),
			cluster.Hierarchy{Top: 1, Mid: 2, Ndm: 1, Threads: 68},
			[]int{1, 2, 4, 8, 16, 32, 64}, []int{1, 2, 4, 8, 16, 32}, []int{1, 2, 4, 8, 16})
	}
	if *fig9 {
		fmt.Println("==== Fig. 9: BN-doped (8,0) CNT, 1024 atoms (model at paper scale) ====")
		super, err := cbs.Repeat(tube, 4) // measured stand-in: 128 atoms
		if err != nil {
			log.Fatal(err)
		}
		doped, err := cbs.BNDope(super, 6, 2017)
		if err != nil {
			log.Fatal(err)
		}
		model := mustModel(doped, cbs.GridConfig{Nx: *nxy, Ny: *nxy, Nz: 4 * *nz, Nf: 4})
		measuredLayers(model)
		w := cluster.FromOperator(model.Op, 32, 16, 3000)
		// Extrapolate the workload to the paper's 72x72x640 grid.
		scale := 32.0 / 4.0
		w.N = int(float64(w.N) * scale)
		w.NzPlanes = int(float64(w.NzPlanes) * scale)
		w.FlopsPerApply *= scale
		w.ProjAllreduceBytes = int(float64(w.ProjAllreduceBytes) * scale)
		modelLayers(machine, w,
			cluster.Hierarchy{Top: 1, Mid: 32, Ndm: 4, Threads: 17},
			[]int{1, 2, 4, 8, 16}, []int{1, 2, 4, 8, 16, 32}, []int{1, 2, 4, 8, 16})
	}
	if *fig10 {
		fmt.Println("==== Fig. 10: BN-doped (8,0) CNT, 10240 atoms (model only) ====")
		model := mustModel(tube, cbs.GridConfig{Nx: *nxy, Ny: *nxy, Nz: *nz, Nf: 4})
		w := cluster.FromOperator(model.Op, 32, 16, 6000)
		scale := 320.0
		w.N = int(float64(w.N) * scale)
		w.NzPlanes = int(float64(w.NzPlanes) * scale)
		w.FlopsPerApply *= scale
		w.ProjAllreduceBytes = int(float64(w.ProjAllreduceBytes) * scale)
		base := cluster.Hierarchy{Top: 16, Mid: 32, Ndm: 2, Threads: 4}
		for _, layer := range []string{"mid", "ndm"} {
			counts := []int{1, 2, 4, 8, 16, 32}
			if layer == "ndm" {
				counts = []int{2, 4, 8, 16, 32, 64}
			}
			pts, err := machine.LayerScaling(w, base, layer, counts)
			if err != nil {
				log.Fatal(err)
			}
			printModelScaling(layer, pts)
		}
	}
	if *table2 {
		fmt.Println("==== Table 2: 64 cores split threads x Ndm, 1000 BiCG iterations (model) ====")
		model := mustModel(tube, cbs.GridConfig{Nx: *nxy, Ny: *nxy, Nz: *nz, Nf: 4})
		for _, sys := range []struct {
			name  string
			scale float64
		}{{"32 atoms", 1}, {"1024 atoms", 32}, {"10240 atoms", 320}} {
			w := cluster.FromOperator(model.Op, 32, 16, 1000)
			w.N = int(float64(w.N) * sys.scale)
			w.NzPlanes = int(float64(w.NzPlanes) * sys.scale)
			w.FlopsPerApply *= sys.scale
			w.ProjAllreduceBytes = int(float64(w.ProjAllreduceBytes) * sys.scale)
			fmt.Printf("-- %s --\n", sys.name)
			fmt.Printf("%-10s %-8s %s\n", "#OpenMP", "#Ndm", "modelled seconds")
			for _, row := range machine.Table2(w, 64, 1000) {
				fmt.Printf("%-10d %-8d %.2f\n", row.Threads, row.Ndm, row.Seconds)
			}
		}
	}
}

func mustModel(st *cbs.Structure, cfg cbs.GridConfig) *cbs.Model {
	m, err := cbs.NewModel(st, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return m
}

// measuredLayers runs real goroutine strong scaling of each layer up to the
// host's core count.
func measuredLayers(model *cbs.Model) {
	ef, err := model.FermiLevel(3)
	if err != nil {
		log.Fatal(err)
	}
	maxW := runtime.NumCPU()
	fmt.Printf("measured on this host (%d cores), N = %d\n", maxW, model.N())
	layers := []struct {
		name string
		cfg  func(w int) cbs.Parallel
		caps int
	}{
		{"top (right-hand sides)", func(w int) cbs.Parallel { return cbs.Parallel{Top: w} }, 8},
		{"middle (quadrature)", func(w int) cbs.Parallel { return cbs.Parallel{Mid: w} }, 8},
		{"bottom (domains)", func(w int) cbs.Parallel { return cbs.Parallel{Ndm: w} }, 4},
	}
	opts := cbs.DefaultOptions()
	opts.Nint = 8
	opts.Nmm = 4
	opts.Nrh = 8
	for _, l := range layers {
		var t1 time.Duration
		fmt.Printf("  %-24s", l.name+":")
		for w := 1; w <= min(maxW, l.caps); w *= 2 {
			o := opts
			o.Parallel = l.cfg(w)
			start := time.Now()
			if _, err := model.SolveCBS(ef, o); err != nil {
				log.Fatal(err)
			}
			el := time.Since(start)
			if w == 1 {
				t1 = el
			}
			fmt.Printf("  %dw=%.2fs(x%.1f)", w, el.Seconds(), t1.Seconds()/el.Seconds())
		}
		fmt.Println()
	}
}

func modelLayers(m cluster.Machine, w cluster.Workload, base cluster.Hierarchy, top, mid, ndm []int) {
	for _, l := range []struct {
		name   string
		counts []int
	}{{"top", top}, {"mid", mid}, {"ndm", ndm}} {
		pts, err := m.LayerScaling(w, base, l.name, l.counts)
		if err != nil {
			log.Fatal(err)
		}
		printModelScaling(l.name, pts)
	}
}

func printModelScaling(layer string, pts []cluster.ScalingPoint) {
	fmt.Printf("  model %-5s:", layer)
	for _, p := range pts {
		fmt.Printf("  %d procs=%.0fs(x%.1f)", p.Workers, p.Time, p.Speedup)
	}
	fmt.Println()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
