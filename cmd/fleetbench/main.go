// fleetbench measures what the TCP fleet costs: the same small Al(100)
// energy sweep runs single-process and then distributed over 2 and 4
// local cbsw worker processes, every distributed result is required to be
// bit-identical to the single-process one, and the wall-clock numbers are
// written as the tracked BENCH_PR9.json snapshot (schema
// cbs-fleetbench/v1, continuing the BENCH_PR6/PR8 trajectory).
//
//	go build -o bin/cbsw ./cmd/cbsw
//	go run ./cmd/fleetbench -json BENCH_PR9.json
//	go run ./cmd/fleetbench -verify BENCH_PR9.json
//
// The distributed wall time includes worker startup (each cbsw process
// rebuilds the model before registering): the snapshot measures the cost
// of *standing up and running* a fleet sweep, not just its steady state.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"cbs"
	"cbs/internal/sweep"
	"cbs/internal/units"
)

const benchSchema = "cbs-fleetbench/v1"

// benchResult is one sweep configuration's timing.
type benchResult struct {
	// Mode is "solo" (in-process sweep engine) or "tcp-<W>" (fleet with W
	// local worker processes).
	Mode        string  `json:"mode"`
	Workers     int     `json:"workers"`
	Procs       int     `json:"procs"` // OS processes involved, coordinator included
	WallMs      float64 `json:"wall_ms"`
	MsPerEnergy float64 `json:"ms_per_energy"`
}

// benchFile is the snapshot document.
type benchFile struct {
	Schema    string             `json:"schema"`
	GitSHA    string             `json:"git_sha"`
	GOOS      string             `json:"goos"`
	GOARCH    string             `json:"goarch"`
	GoVersion string             `json:"go_version"`
	System    string             `json:"system"`
	Nxy       int                `json:"nxy"`
	Nz        int                `json:"nz"`
	NE        int                `json:"ne"`
	Nint      int                `json:"nint"`
	Nmm       int                `json:"nmm"`
	Nrh       int                `json:"nrh"`
	Results   []benchResult      `json:"results"`
	Speedups  map[string]float64 `json:"speedups"` // tcp-W wall vs solo wall
	// GoldenMatch records that every distributed result compared
	// bit-identical to the single-process sweep — a snapshot without it is
	// measuring a broken fleet.
	GoldenMatch bool `json:"golden_match"`
}

func main() {
	jsonPath := flag.String("json", "", "write the benchmark snapshot to this file")
	verify := flag.String("verify", "", "parse an existing snapshot against the cbs-fleetbench/v1 schema and exit")
	cbswPath := flag.String("cbsw", "bin/cbsw", "path to the built cbsw worker binary")
	nxy := flag.Int("nxy", 10, "transverse grid points")
	nz := flag.Int("nz", 10, "axial grid points")
	ne := flag.Int("ne", 8, "energies in the sweep")
	flag.Parse()

	if *verify != "" {
		if err := verifyBenchFile(*verify); err != nil {
			log.Fatalf("%s: %v", *verify, err)
		}
		fmt.Printf("%s: valid %s snapshot\n", *verify, benchSchema)
		return
	}

	ctx := context.Background()
	st, err := cbs.AlBulk100(1)
	if err != nil {
		log.Fatal(err)
	}
	model, err := cbs.NewModel(st, cbs.GridConfig{Nx: *nxy, Ny: *nxy, Nz: *nz, Nf: 4})
	if err != nil {
		log.Fatal(err)
	}
	ef, err := model.FermiLevel(4)
	if err != nil {
		log.Fatal(err)
	}
	opts := cbs.DefaultOptions()
	opts.Nint = 8
	opts.Nmm = 4
	opts.Nrh = 4
	es := make([]float64, *ne)
	for i := range es {
		f := float64(i) / float64(max(1, *ne-1))
		es[i] = ef + units.EVToHartree(-0.5+1.0*f)
	}

	file := benchFile{
		Schema: benchSchema, GitSHA: gitSHA(),
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, GoVersion: runtime.Version(),
		System: "al", Nxy: *nxy, Nz: *nz, NE: *ne,
		Nint: opts.Nint, Nmm: opts.Nmm, Nrh: opts.Nrh,
		Speedups:    map[string]float64{},
		GoldenMatch: true,
	}

	fmt.Fprintf(os.Stderr, "fleetbench: %s, N = %d, %d energies\n", st.Name, model.N(), *ne)
	t0 := time.Now()
	goldenRep, err := model.SweepCBS(ctx, es, opts, cbs.SweepConfig{})
	soloWall := time.Since(t0)
	if err != nil {
		log.Fatalf("solo sweep: %v", err)
	}
	if goldenRep.OK != len(es) {
		log.Fatalf("solo sweep: OK=%d of %d", goldenRep.OK, len(es))
	}
	file.Results = append(file.Results, result("solo", 1, 1, soloWall, *ne))
	fmt.Fprintf(os.Stderr, "fleetbench: solo %.0f ms\n", soloWall.Seconds()*1e3)

	for _, w := range []int{2, 4} {
		wall, rep := fleetSweep(ctx, model, es, opts, *cbswPath, *nxy, *nz, w)
		file.Results = append(file.Results, result(fmt.Sprintf("tcp-%d", w), w, w+1, wall, *ne))
		file.Speedups[fmt.Sprintf("tcp-%d_vs_solo", w)] = soloWall.Seconds() / wall.Seconds()
		if !reportsMatch(goldenRep, rep) {
			file.GoldenMatch = false
		}
		fmt.Fprintf(os.Stderr, "fleetbench: tcp-%d %.0f ms (%.2fx solo), golden match: %v\n",
			w, wall.Seconds()*1e3, soloWall.Seconds()/wall.Seconds(), file.GoldenMatch)
	}
	if !file.GoldenMatch {
		log.Fatal("fleetbench: distributed sweep diverged from the single-process golden")
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fleetbench: snapshot written to %s\n", *jsonPath)
	}
}

// fleetSweep coordinates one distributed sweep over w cbsw processes.
func fleetSweep(ctx context.Context, model *cbs.Model, es []float64, opts cbs.Options, cbswPath string, nxy, nz, w int) (time.Duration, *cbs.SweepReport) {
	var procs []*exec.Cmd
	t0 := time.Now()
	rep, err := model.CoordinateFleet(ctx, es, opts, cbs.FleetCoordinatorConfig{
		Addr:       "127.0.0.1:0",
		MinWorkers: w,
		OnListen: func(addr string) {
			for i := 0; i < w; i++ {
				cmd := exec.Command(cbswPath,
					"-coordinator", addr, "-name", fmt.Sprintf("bench%d", i),
					"-system", "al", "-nxy", strconv.Itoa(nxy), "-nz", strconv.Itoa(nz))
				cmd.Stderr = os.Stderr
				if err := cmd.Start(); err != nil {
					log.Fatalf("start %s: %v", cbswPath, err)
				}
				procs = append(procs, cmd)
			}
		},
	})
	wall := time.Since(t0)
	if err != nil {
		log.Fatalf("fleet sweep (%d workers): %v", w, err)
	}
	for _, p := range procs {
		if werr := p.Wait(); werr != nil {
			log.Fatalf("worker exited with %v", werr)
		}
	}
	if rep.OK != len(es) {
		log.Fatalf("fleet sweep (%d workers): OK=%d of %d (failed %d, skipped %d)", w, rep.OK, len(es), rep.Failed, rep.Skipped)
	}
	return wall, rep
}

// reportsMatch compares two sweep reports energy by energy: same status,
// bit-identical encoded result.
func reportsMatch(a, b *cbs.SweepReport) bool {
	if len(a.Results) != len(b.Results) {
		return false
	}
	for i := range a.Results {
		ra, rb := a.Results[i], b.Results[i]
		if ra.Status != rb.Status {
			return false
		}
		ja, _ := json.Marshal(sweep.EncodeResult(ra.Result))
		jb, _ := json.Marshal(sweep.EncodeResult(rb.Result))
		if string(ja) != string(jb) {
			return false
		}
	}
	return true
}

func result(mode string, workers, procs int, wall time.Duration, ne int) benchResult {
	ms := wall.Seconds() * 1e3
	return benchResult{Mode: mode, Workers: workers, Procs: procs, WallMs: ms, MsPerEnergy: ms / float64(ne)}
}

func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// verifyBenchFile parses path against the cbs-fleetbench/v1 schema — the
// CI tripwire for the committed BENCH_PR9.json.
func verifyBenchFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f benchFile
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	if f.Schema != benchSchema {
		return fmt.Errorf("schema %q, want %q", f.Schema, benchSchema)
	}
	if f.GOARCH == "" || f.GoVersion == "" || f.GitSHA == "" {
		return fmt.Errorf("missing provenance fields (goarch/go_version/git_sha)")
	}
	if f.NE <= 0 || f.Nxy <= 0 || f.Nz <= 0 {
		return fmt.Errorf("non-positive problem shape ne=%d nxy=%d nz=%d", f.NE, f.Nxy, f.Nz)
	}
	want := map[string]bool{"solo": false, "tcp-2": false, "tcp-4": false}
	for _, r := range f.Results {
		if _, ok := want[r.Mode]; !ok {
			return fmt.Errorf("unexpected result mode %q", r.Mode)
		}
		if r.WallMs <= 0 || r.MsPerEnergy <= 0 || r.Workers <= 0 {
			return fmt.Errorf("result %q has non-positive timing", r.Mode)
		}
		want[r.Mode] = true
	}
	for mode, seen := range want {
		if !seen {
			return fmt.Errorf("missing result %q", mode)
		}
	}
	for _, k := range []string{"tcp-2_vs_solo", "tcp-4_vs_solo"} {
		if f.Speedups[k] <= 0 {
			return fmt.Errorf("missing or non-positive speedup %q", k)
		}
	}
	if !f.GoldenMatch {
		return fmt.Errorf("snapshot records a golden mismatch: the fleet was broken when it was taken")
	}
	return nil
}
