package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cbs/internal/core"
	"cbs/internal/sweep"
)

// fakeBackend is a controllable physics stand-in: solve counts calls and
// can be gated; sweep runs the real sweep engine over the fake solve, so
// journaling, resume, and progress behave exactly as in production.
type fakeBackend struct {
	calls   atomic.Int64         // underlying solve executions
	gate    chan struct{}        // when non-nil, solve blocks until closed
	perGate func(e float64) bool // which energies block (nil: all, when gate set)
}

func (f *fakeBackend) solve(ctx context.Context, e float64, opts core.Options) (*core.Result, error) {
	f.calls.Add(1)
	if f.gate != nil && (f.perGate == nil || f.perGate(e)) {
		select {
		case <-f.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return &core.Result{
		Energy: e,
		Rank:   2,
		Pairs: []core.Eigenpair{
			{Lambda: complex(0.8, 0.1), K: complex(0.3, 0.05), Residual: 1e-11,
				Psi: []complex128{complex(1, 0), complex(0, 1)}},
		},
	}, nil
}

func (f *fakeBackend) sweepRun(ctx context.Context, es []float64, opts core.Options, cfg sweep.Config) (*sweep.Report, error) {
	return sweep.Run(ctx, f.solve, es, opts, cfg)
}

// newTestServer stands a server on the fake backend.
func newTestServer(t *testing.T, fb *fakeBackend, mut func(*serverConfig)) (*server, *httptest.Server) {
	t.Helper()
	cfg := serverConfig{
		backend: backend{
			desc:  "fake|grid=2x2x2|N=8|a=1",
			ef:    0.1,
			a:     7.5,
			solve: fb.solve,
			sweep: fb.sweepRun,
		},
		workers:      4,
		queueDepth:   32,
		cacheEntries: 64,
		sweepWorkers: 1,
		defaults:     core.DefaultOptions(),
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck // test teardown
	})
	return s, ts
}

// postJSON posts body and decodes the response into out (if non-nil).
func postJSON(t *testing.T, url, body string, out any) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	if out != nil {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("decode %q: %v", buf.String(), err)
		}
	}
	return resp
}

// getJob fetches a job snapshot.
func getJob(t *testing.T, base, id string) jobJSON {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: HTTP %d", id, resp.StatusCode)
	}
	var out jobJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// waitJob polls until the job is terminal.
func waitJob(t *testing.T, base, id string) jobJSON {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		j := getJob(t, base, id)
		switch j.State {
		case "done", "failed", "canceled":
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return jobJSON{}
}

// TestConcurrentIdenticalSolvesSingleflight is acceptance criterion 1:
// identical simultaneous requests collapse to exactly one underlying
// solve, observed through the full HTTP stack.
func TestConcurrentIdenticalSolvesSingleflight(t *testing.T) {
	fb := &fakeBackend{gate: make(chan struct{})}
	_, ts := newTestServer(t, fb, nil)

	const n = 12
	body := `{"energy_ev": 0.25, "options": {"nint": 8, "nrh": 4}}`
	ids := make([]string, n)
	var fp string
	for i := 0; i < n; i++ {
		var sub submitResponse
		resp := postJSON(t, ts.URL+"/v1/solve", body, &sub)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST %d: HTTP %d", i, resp.StatusCode)
		}
		if fp == "" {
			fp = sub.Fingerprint
		} else if sub.Fingerprint != fp {
			t.Fatalf("identical requests got different fingerprints %s vs %s", fp, sub.Fingerprint)
		}
		ids[i] = sub.ID
	}
	// All 12 jobs are in the system against one gated solve; release it.
	time.Sleep(20 * time.Millisecond)
	close(fb.gate)

	for _, id := range ids {
		j := waitJob(t, ts.URL, id)
		if j.State != "done" {
			t.Fatalf("job %s ended %s: %s", id, j.State, j.Error)
		}
		if j.Result == nil || j.Result.Energy == 0 {
			t.Fatalf("job %s missing result", id)
		}
		if len(j.Result.Pairs) != 1 || j.Result.Pairs[0].Psi != nil {
			t.Fatalf("job %s: vectors must be stripped by default: %+v", id, j.Result.Pairs)
		}
	}
	if got := fb.calls.Load(); got != 1 {
		t.Fatalf("%d identical concurrent requests executed %d solves, want exactly 1", n, got)
	}
}

// TestCacheHitSkipsSolver is acceptance criterion 2: a repeat request
// after completion is served from the cache — the hit counter increments
// and the solver call counter does not.
func TestCacheHitSkipsSolver(t *testing.T) {
	fb := &fakeBackend{}
	s, ts := newTestServer(t, fb, nil)

	body := `{"energy_ev": -0.5}`
	var first submitResponse
	postJSON(t, ts.URL+"/v1/solve", body, &first)
	j1 := waitJob(t, ts.URL, first.ID)
	if j1.State != "done" || j1.CacheOutcome != "miss" {
		t.Fatalf("first request: state %s cache %s, want done/miss", j1.State, j1.CacheOutcome)
	}
	callsAfterFirst := fb.calls.Load()

	var second submitResponse
	postJSON(t, ts.URL+"/v1/solve", body, &second)
	j2 := waitJob(t, ts.URL, second.ID)
	if j2.State != "done" || j2.CacheOutcome != "hit" {
		t.Fatalf("second request: state %s cache %s, want done/hit", j2.State, j2.CacheOutcome)
	}
	if fb.calls.Load() != callsAfterFirst {
		t.Fatalf("cache hit executed a solve (%d -> %d calls)", callsAfterFirst, fb.calls.Load())
	}
	cs := s.cache.Stats()
	if cs.Hits != 1 || cs.Misses != 1 {
		t.Errorf("cache stats %+v, want 1 hit 1 miss", cs)
	}

	// A request with different options is a different fingerprint: miss.
	var third submitResponse
	postJSON(t, ts.URL+"/v1/solve", `{"energy_ev": -0.5, "options": {"nint": 64}}`, &third)
	if third.Fingerprint == first.Fingerprint {
		t.Fatal("option change did not change the fingerprint")
	}
	j3 := waitJob(t, ts.URL, third.ID)
	if j3.CacheOutcome != "miss" {
		t.Errorf("different options served cache %s, want miss", j3.CacheOutcome)
	}

	// /metrics (expvar) reflects the counters.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		Cbsd struct {
			Cache struct {
				Hits   int64 `json:"hits"`
				Misses int64 `json:"misses"`
			} `json:"cache"`
			Solve struct {
				Count int64 `json:"count"`
			} `json:"solve"`
		} `json:"cbsd"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if vars.Cbsd.Cache.Hits != 1 || vars.Cbsd.Cache.Misses != 2 {
		t.Errorf("/metrics cache = %+v, want 1 hit 2 misses", vars.Cbsd.Cache)
	}
	if vars.Cbsd.Solve.Count != fb.calls.Load() {
		t.Errorf("/metrics solve count %d, backend saw %d", vars.Cbsd.Solve.Count, fb.calls.Load())
	}
}

// TestQueueOverflowReturns429 is acceptance criterion 3: a full queue
// rejects with HTTP 429 and Retry-After instead of blocking.
func TestQueueOverflowReturns429(t *testing.T) {
	fb := &fakeBackend{gate: make(chan struct{})}
	defer close(fb.gate)
	_, ts := newTestServer(t, fb, func(cfg *serverConfig) {
		cfg.workers = 1
		cfg.queueDepth = 1
	})

	// Distinct energies so each request is a distinct job and key.
	accepted := 0
	var rejected *http.Response
	for i := 0; i < 8; i++ {
		body := fmt.Sprintf(`{"energy_ev": %g}`, 0.1*float64(i+1))
		var errResp errorResponse
		resp := postJSON(t, ts.URL+"/v1/solve", body, &errResp)
		switch resp.StatusCode {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			if rejected == nil {
				rejected = resp
				if !strings.Contains(errResp.Error, "queue full") {
					t.Errorf("429 body %q does not name the typed rejection", errResp.Error)
				}
			}
		default:
			t.Fatalf("request %d: unexpected HTTP %d", i, resp.StatusCode)
		}
	}
	if rejected == nil {
		t.Fatal("8 requests against workers=1 queue=1 never drew a 429")
	}
	if ra := rejected.Header.Get("Retry-After"); ra == "" {
		t.Error("429 missing Retry-After header")
	}
	// 1 running + 1 queued is the system's capacity.
	if accepted > 2 {
		t.Errorf("%d accepted, want at most 2 (workers=1 + queue=1)", accepted)
	}
}

// TestSweepDrainLeavesResumableJournal is acceptance criterion 4: SIGTERM
// (server drain) during an in-flight sweep leaves a checkpoint journal
// that a restarted server resumes from without re-solving.
func TestSweepDrainLeavesResumableJournal(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	fb := &fakeBackend{gate: gate, perGate: func(e float64) bool {
		// Energies arrive as ef + eV2hartree(ev); block from the third on.
		return e > 0.1 // ev >= ~0.3
	}}
	_, ts := newTestServer(t, fb, func(cfg *serverConfig) {
		cfg.checkpointDir = dir
	})

	body := `{"energies_ev": [-0.2, -0.1, 0.3, 0.4, 0.5], "options": {"nint": 8}}`
	var sub submitResponse
	resp := postJSON(t, ts.URL+"/v1/sweep", body, &sub)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST sweep: HTTP %d", resp.StatusCode)
	}
	// Wait until the two unblocked energies are journaled (progress 2/5).
	deadline := time.Now().Add(10 * time.Second)
	for {
		j := getJob(t, ts.URL, sub.ID)
		if j.Progress != nil && j.Progress.Done >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep never completed its first two energies")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// SIGTERM: drain with an already-expired grace — in-flight work is
	// context-canceled and the sweep checkpoints what it finished.
	dctx, dcancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer dcancel()
	srv := activeServer.Load()
	srv.Drain(dctx) //nolint:errcheck // forced cancellation is the point
	j := getJob(t, ts.URL, sub.ID)
	if j.State != "canceled" {
		t.Fatalf("drained sweep ended %s, want canceled", j.State)
	}

	journal := filepath.Join(dir, sub.Fingerprint+".journal")
	if _, err := os.Stat(journal); err != nil {
		t.Fatalf("no journal at %s after drain: %v", journal, err)
	}
	recs, err := sweep.Load(journal, sub.Fingerprint)
	if err != nil {
		t.Fatalf("journal unreadable: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("journal holds %d records, want the 2 completed energies", len(recs))
	}

	// "Restart": a fresh server on the same checkpoint dir; the identical
	// sweep resumes — restored energies are not re-solved.
	fb2 := &fakeBackend{}
	_, ts2 := newTestServer(t, fb2, func(cfg *serverConfig) {
		cfg.checkpointDir = dir
	})
	var sub2 submitResponse
	postJSON(t, ts2.URL+"/v1/sweep", body, &sub2)
	if sub2.Fingerprint != sub.Fingerprint {
		t.Fatalf("resubmitted sweep fingerprint %s != %s", sub2.Fingerprint, sub.Fingerprint)
	}
	j2 := waitJob(t, ts2.URL, sub2.ID)
	if j2.State != "done" || j2.Sweep == nil {
		t.Fatalf("resumed sweep: %+v", j2)
	}
	if j2.Sweep.Restored != 2 || j2.Sweep.OK != 5 {
		t.Fatalf("resumed sweep restored=%d ok=%d, want 2 restored of 5 ok", j2.Sweep.Restored, j2.Sweep.OK)
	}
	if got := fb2.calls.Load(); got != 3 {
		t.Fatalf("resume executed %d solves, want 3 (2 restored from journal)", got)
	}
	restored := 0
	for _, e := range j2.Sweep.Energies {
		if e.Restored {
			restored++
		}
	}
	if restored != 2 {
		t.Errorf("per-energy rows show %d restored, want 2", restored)
	}
}

// TestSweepWarmsTheSolveCache: a completed sweep energy serves a later
// identical single-energy solve from the cache.
func TestSweepWarmsTheSolveCache(t *testing.T) {
	fb := &fakeBackend{}
	_, ts := newTestServer(t, fb, nil)
	var sub submitResponse
	postJSON(t, ts.URL+"/v1/sweep", `{"energies_ev": [0.1, 0.2], "options": {"nrh": 4}}`, &sub)
	if waitJob(t, ts.URL, sub.ID).State != "done" {
		t.Fatal("sweep failed")
	}
	callsAfterSweep := fb.calls.Load()

	var solveSub submitResponse
	postJSON(t, ts.URL+"/v1/solve", `{"energy_ev": 0.2, "options": {"nrh": 4}}`, &solveSub)
	j := waitJob(t, ts.URL, solveSub.ID)
	if j.State != "done" || j.CacheOutcome != "hit" {
		t.Fatalf("solve after sweep: state %s cache %s, want done/hit", j.State, j.CacheOutcome)
	}
	if fb.calls.Load() != callsAfterSweep {
		t.Fatal("solve after sweep re-executed the solver")
	}
}

// TestJobEndpoints covers the small surface: 404s, cancel, healthz, and
// malformed requests.
func TestJobEndpoints(t *testing.T) {
	fb := &fakeBackend{gate: make(chan struct{})}
	defer close(fb.gate)
	s, ts := newTestServer(t, fb, nil)

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d, want 200", hresp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/j999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", resp.StatusCode)
	}

	for _, bad := range []string{`{`, `{}`, `{"options": {"nint": 8}}`} {
		resp := postJSON(t, ts.URL+"/v1/solve", bad, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: HTTP %d, want 400", bad, resp.StatusCode)
		}
	}

	// Cancel a running job via DELETE.
	var sub submitResponse
	postJSON(t, ts.URL+"/v1/solve", `{"energy_ev": 0.9}`, &sub)
	waitRunning := time.Now().Add(5 * time.Second)
	for getJob(t, ts.URL, sub.ID).State == "queued" && time.Now().Before(waitRunning) {
		time.Sleep(time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Errorf("DELETE job: HTTP %d, want 202", dresp.StatusCode)
	}
	j := waitJob(t, ts.URL, sub.ID)
	if j.State != "canceled" {
		t.Errorf("canceled job ended %s", j.State)
	}

	// Draining flips healthz to 503 and submissions to 503.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	s.Drain(ctx) //nolint:errcheck
	hresp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp2.Body.Close()
	if hresp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: HTTP %d, want 503", hresp2.StatusCode)
	}
	sresp := postJSON(t, ts.URL+"/v1/solve", `{"energy_ev": 1.1}`, nil)
	if sresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: HTTP %d, want 503", sresp.StatusCode)
	}
}

// TestConcurrentMixedTraffic hammers the server with a mix of identical
// and distinct requests under -race: the invariant is one solve per
// distinct fingerprint.
func TestConcurrentMixedTraffic(t *testing.T) {
	fb := &fakeBackend{}
	_, ts := newTestServer(t, fb, func(cfg *serverConfig) {
		cfg.workers = 8
		cfg.queueDepth = 128
	})
	const clients, distinct = 24, 4
	var wg sync.WaitGroup
	ids := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"energy_ev": %g}`, 0.1*float64(i%distinct))
			var sub submitResponse
			resp := postJSON(t, ts.URL+"/v1/solve", body, &sub)
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("client %d: HTTP %d", i, resp.StatusCode)
				return
			}
			ids[i] = sub.ID
		}(i)
	}
	wg.Wait()
	for _, id := range ids {
		if id == "" {
			continue
		}
		if j := waitJob(t, ts.URL, id); j.State != "done" {
			t.Errorf("job %s: %s (%s)", id, j.State, j.Error)
		}
	}
	if got := fb.calls.Load(); got != distinct {
		t.Errorf("%d clients over %d fingerprints executed %d solves, want %d", clients, distinct, got, distinct)
	}
}
