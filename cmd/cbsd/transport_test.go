// transport_test.go is the end-to-end acceptance of POST /v1/transport: a
// real tight-binding chain model behind the full HTTP stack — submit,
// poll, and golden-check the physics (quantized plateaus, sub-unity
// tunneling), plus the cache criterion: the same transport request served
// twice costs no second round of solves.
package main

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cbs"
	"cbs/internal/core"
	"cbs/internal/negf"
	"cbs/internal/sweep"
	"cbs/internal/units"
)

// newTBServer stands a server on a real nc-site tight-binding chain
// (eps=0, t=-1, a=nc bohr): cheap enough for CI, analytic enough to
// golden-check.
func newTBServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	model, err := cbs.NewTBChain(cbs.TBChainConfig{Sites: 4, Onsite: 0, Hopping: -1, A: 4})
	if err != nil {
		t.Fatal(err)
	}
	ef, err := model.FermiLevel(0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := serverConfig{
		backend:      modelBackend(model, ef),
		workers:      2,
		queueDepth:   32,
		cacheEntries: 64,
		sweepWorkers: 2,
		defaults:     core.DefaultOptions(),
	}
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck // test teardown
	})
	return s, ts
}

// evList formats hartree energies as an energies_ev JSON array (the chain
// model's EF is 0, so eV values are plain conversions).
func evList(es ...float64) string {
	out := "["
	for i, e := range es {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%.17g", units.HartreeToEV(e))
	}
	return out + "]"
}

// TestTransportEndToEndQuantizedAndCached is the PR's e2e acceptance: a
// uniform chain transmits exactly its integer open-channel count at every
// in-band energy, an identical resubmission is served from the result
// cache (no new solves through the full HTTP stack), and a gap energy
// transmits ~0 with a positive reported decay.
func TestTransportEndToEndQuantizedAndCached(t *testing.T) {
	s, ts := newTBServer(t)

	// -0.5, 0 and 0.5 hartree are mid-band (|E| < 2|t|; 0 is the
	// band-folding degeneracy, resolved by the velocity operator); 2.02 is
	// in the gap with its evanescent branch still inside the annulus.
	body := fmt.Sprintf(`{"energies_ev": %s, "cells": 3, "bias_hartree": [0, 0.2],
		"options": {"nrh": 2, "nmm": 2}}`, evList(-0.5, 0, 0.5, 2.02))

	var sub submitResponse
	if resp := postJSON(t, ts.URL+"/v1/transport", body, &sub); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/transport: HTTP %d", resp.StatusCode)
	}
	j := waitJob(t, ts.URL, sub.ID)
	if j.State != "done" {
		t.Fatalf("job state %q (err %q), want done", j.State, j.Error)
	}
	if j.Kind != "transport" {
		t.Fatalf("job kind %q, want transport", j.Kind)
	}
	if j.Transport == nil || len(j.Transport.Points) != 4 {
		t.Fatalf("transport payload missing or wrong length: %+v", j.Transport)
	}
	for _, p := range j.Transport.Points {
		if p.Status != "ok" {
			t.Fatalf("point %+v not ok", p)
		}
		e := units.EVToHartree(p.EnergyEV)
		switch {
		case e < 2: // in-band: one open channel, unit transmission
			if p.NOpen != 1 || !near(p.T, 1, 1e-6) {
				t.Errorf("E=%.2f: T=%g n_open=%d, want quantized 1", e, p.T, p.NOpen)
			}
			if p.Beta != 0 {
				t.Errorf("E=%.2f: beta=%g, want 0 (propagating)", e, p.Beta)
			}
		default: // gap: closed with a positive decay constant
			if p.NOpen != 0 || p.T > 1e-6 {
				t.Errorf("E=%.2f: T=%g n_open=%d, want closed", e, p.T, p.NOpen)
			}
			if p.Beta <= 0 {
				t.Errorf("E=%.2f: beta=%g, want > 0 (evanescent)", e, p.Beta)
			}
		}
	}
	if len(j.Transport.IV) != 2 || j.Transport.IV[0].I != 0 || j.Transport.IV[1].I <= 0 {
		t.Errorf("IV = %+v, want zero-bias 0 and positive current at 0.2 hartree", j.Transport.IV)
	}

	// Criterion: the identical request again is one solve through the full
	// stack — i.e. zero NEW solves; every energy hits the result cache.
	solved := s.solveCount.Load()
	if solved == 0 {
		t.Fatal("first transport request recorded no solves")
	}
	var sub2 submitResponse
	postJSON(t, ts.URL+"/v1/transport", body, &sub2)
	if sub2.Fingerprint != sub.Fingerprint {
		t.Fatalf("identical transport requests got fingerprints %s vs %s", sub.Fingerprint, sub2.Fingerprint)
	}
	j2 := waitJob(t, ts.URL, sub2.ID)
	if j2.State != "done" {
		t.Fatalf("resubmitted job state %q, want done", j2.State)
	}
	if got := s.solveCount.Load(); got != solved {
		t.Errorf("resubmission re-solved: %d -> %d backend solves", solved, got)
	}
	if cs := s.cache.Stats(); cs.Hits < 4 {
		t.Errorf("cache hits = %d, want >= 4 (one per resubmitted energy)", cs.Hits)
	}
}

// TestTransportEndToEndBarrierTunneling: a 2-cell barrier inside the
// device attenuates the open channel below 1 — tunneling, not an open or
// closed integer — through the full HTTP stack.
func TestTransportEndToEndBarrierTunneling(t *testing.T) {
	_, ts := newTBServer(t)

	body := fmt.Sprintf(`{"energies_ev": %s, "cells": 4, "barrier_hartree": [0, 3, 3, 0],
		"options": {"nrh": 2, "nmm": 2}}`, evList(0.3))
	var sub submitResponse
	if resp := postJSON(t, ts.URL+"/v1/transport", body, &sub); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/transport: HTTP %d", resp.StatusCode)
	}
	j := waitJob(t, ts.URL, sub.ID)
	if j.State != "done" {
		t.Fatalf("job state %q (err %q), want done", j.State, j.Error)
	}
	p := j.Transport.Points[0]
	if p.Status != "ok" || p.NOpen != 1 {
		t.Fatalf("point %+v, want ok with one open lead channel", p)
	}
	if p.T <= 0 || p.T >= 0.5 {
		t.Errorf("barrier T = %g, want sub-unity tunneling (0, 0.5)", p.T)
	}
}

// TestTransportRequestValidation: a barrier that does not match the device
// length is a 400 at submit time, and a server without a transport backend
// refuses rather than panics.
func TestTransportRequestValidation(t *testing.T) {
	_, ts := newTBServer(t)
	resp := postJSON(t, ts.URL+"/v1/transport",
		`{"energies_ev": [0], "cells": 2, "barrier_hartree": [1]}`, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mismatched barrier: HTTP %d, want 400", resp.StatusCode)
	}

	fb := &fakeBackend{}
	_, ts2 := newTestServer(t, fb, nil) // fake backend has no transport fn
	resp = postJSON(t, ts2.URL+"/v1/transport", `{"energies_ev": [0], "cells": 1}`, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("no transport backend: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestTransportJobRestartResume: a transport job killed mid-flight is
// re-adopted from the job log on restart and finishes with the same
// fingerprint-keyed identity (the journaled spec rebuilds the NEGF task).
func TestTransportJobRestartResume(t *testing.T) {
	dir := t.TempDir()
	model, err := cbs.NewTBChain(cbs.TBChainConfig{Sites: 4, Onsite: 0, Hopping: -1, A: 4})
	if err != nil {
		t.Fatal(err)
	}
	mkServer := func() (*server, *httptest.Server) {
		cfg := serverConfig{
			backend:       modelBackend(model, 0),
			workers:       2,
			queueDepth:    32,
			cacheEntries:  64,
			sweepWorkers:  1,
			checkpointDir: dir,
			defaults:      core.DefaultOptions(),
		}
		s, err := newServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		return s, ts
	}
	s1, ts1 := mkServer()
	body := fmt.Sprintf(`{"energies_ev": %s, "cells": 2, "options": {"nrh": 2, "nmm": 2}}`,
		evList(0.4, -0.6))
	var sub submitResponse
	postJSON(t, ts1.URL+"/v1/transport", body, &sub)
	if waitJob(t, ts1.URL, sub.ID).State != "done" {
		t.Fatal("first run did not finish")
	}
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s1.Drain(ctx) //nolint:errcheck // teardown of the first incarnation

	// Restart over the same job log: the finished transport job replays as
	// terminal, and a fresh identical submission resumes from the sweep
	// journal (restored energies, no fresh solve needed to agree).
	s2, ts2 := mkServer()
	defer ts2.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s2.Drain(ctx) //nolint:errcheck // test teardown
	}()
	var sub2 submitResponse
	postJSON(t, ts2.URL+"/v1/transport", body, &sub2)
	if sub2.Fingerprint != sub.Fingerprint {
		t.Fatalf("fingerprint drifted across restart: %s vs %s", sub.Fingerprint, sub2.Fingerprint)
	}
	j := waitJob(t, ts2.URL, sub2.ID)
	if j.State != "done" {
		t.Fatalf("resumed job state %q (err %q), want done", j.State, j.Error)
	}
	if got := s2.solveCount.Load(); got != 0 {
		t.Errorf("restarted server re-solved %d energies, want 0 (journal restore)", got)
	}
	for _, p := range j.Transport.Points {
		if p.Status != "ok" || !near(p.T, 1, 1e-6) {
			t.Errorf("restored point %+v, want ok with T=1", p)
		}
	}
}

// near reports |a-b| <= tol.
func near(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// Compile-time check that the test file and server agree on the transport
// backend signature (catches drift between modelBackend and serverConfig).
var _ func(ctx context.Context, solve sweep.SolveFunc, spec negf.Spec, opts core.Options, cfg sweep.Config) (*negf.Curve, error) = backend{}.transport
