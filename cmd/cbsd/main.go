// cbsd is the CBS job server: the paper's workload — independent solves
// over (operator, energy) — as a request/response service. One model
// (structure + grid) is discretized at startup; clients submit
// single-energy solves and energy sweeps over HTTP, poll per-job status
// with per-energy progress, and share a fingerprint-keyed result cache
// with singleflight deduplication, so N identical concurrent requests
// cost one solve and repeat traffic costs none.
//
// API (JSON):
//
//	POST   /v1/solve           {"energy_ev": 0.25, "options": {"nint": 8}}   -> 202 {id, status_url, fingerprint}
//	POST   /v1/sweep           {"emin_ev": -1, "emax_ev": 1, "ne": 21}       -> 202 {id, status_url, fingerprint}
//	POST   /v1/bands           {"emin_ev": -1, "emax_ev": 1, "ne": 21, "kmax_im": 0.5} -> 202 (batch band structure)
//	POST   /v1/transport       {"emin_ev": -1, "emax_ev": 1, "ne": 21, "cells": 3}     -> 202 (NEGF transmission T(E))
//	GET    /v1/jobs/{id}       (?vectors=1 to include eigenvectors)          -> job state, progress, results
//	GET    /v1/jobs/{id}/events  SSE stream: state transitions + per-energy progress, Last-Event-ID replay
//	DELETE /v1/jobs/{id}       cancel; idempotent on finished jobs (200 + terminal state)
//	GET    /healthz            200 serving | 503 draining
//	GET    /metrics            expvar: cache hits/misses, queue depth, in-flight, solve latency
//
// Backpressure: a bounded worker pool behind fixed-depth per-client
// queues (weighted round-robin across X-CBS-Client identities); a full
// queue rejects with 429 + jittered Retry-After instead of queueing
// unboundedly. Durability: with -checkpoint-dir set, sweeps journal per
// energy under <dir>/<fingerprint>.journal and every job transition
// journals to <dir>/jobs.log; SIGTERM drains in-flight work (grace
// period, then context cancellation — the journal already holds every
// completed energy); a killed server replays the job log on restart and
// re-adopts every unfinished job, resuming sweeps from their journals or
// failing them with a typed "lost to restart" error.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cbs"
	"cbs/internal/chaos"
	"cbs/internal/core"
	"cbs/internal/negf"
	"cbs/internal/sweep"
	"cbs/internal/units"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	sys := flag.String("system", "al", "system: al | cnt | bundle7 | crystalline | bncnt | tb-chain | tb-slab")
	n := flag.Int("n", 8, "CNT chiral index n")
	m := flag.Int("m", 0, "CNT chiral index m")
	cells := flag.Int("cells", 1, "cells stacked along z (supercell)")
	bnPairs := flag.Int("bn-pairs", 0, "BN dopant pairs (bncnt)")
	dopeSeed := flag.Int64("dope-seed", 2017, "doping seed")
	nxy := flag.Int("nxy", 16, "transverse grid points")
	nz := flag.Int("nz", 10, "axial grid points per cell")
	nf := flag.Int("nf", 4, "finite-difference half-width")

	tbSites := flag.Int("tb-sites", 4, "tb-chain: sites per principal layer (supercell)")
	tbNx := flag.Int("tb-nx", 2, "tb-slab: transverse sites along x")
	tbNy := flag.Int("tb-ny", 2, "tb-slab: transverse sites along y")
	tbOnsite := flag.Float64("tb-onsite", 0, "tight-binding onsite energy eps (hartree)")
	tbHop := flag.Float64("tb-hop", -1, "tight-binding nearest-neighbor hopping t (hartree)")
	tbA := flag.Float64("tb-a", 1, "tight-binding lattice constant a (bohr)")

	workers := flag.Int("workers", 2, "concurrent jobs (worker pool size)")
	queueDepth := flag.Int("queue-depth", 16, "accepted-but-unstarted job bound (overflow returns 429)")
	cacheEntries := flag.Int("cache-entries", 256, "result cache capacity (LRU entries)")
	sweepWorkers := flag.Int("sweep-workers", 1, "concurrent energies within one sweep job")
	checkpointDir := flag.String("checkpoint-dir", "", "journal sweeps under <dir>/<fingerprint>.journal (resumable)")
	drainGrace := flag.Duration("drain-grace", 10*time.Second, "how long SIGTERM lets in-flight jobs finish before canceling them")

	top := flag.Int("top", 1, "top-layer workers per solve (right-hand sides)")
	mid := flag.Int("mid", 1, "middle-layer workers per solve (quadrature points)")
	ndm := flag.Int("ndm", 1, "bottom-layer domains per solve")
	flag.Parse()

	var (
		model *cbs.Model
		err   error
	)
	switch *sys {
	case "tb-chain":
		model, err = cbs.NewTBChain(cbs.TBChainConfig{
			Sites: *tbSites, Onsite: *tbOnsite, Hopping: *tbHop, A: *tbA,
		})
	case "tb-slab":
		model, err = cbs.NewTBSlab(cbs.TBSlabConfig{
			Nx: *tbNx, Ny: *tbNy, Onsite: *tbOnsite, Hopping: *tbHop, A: *tbA,
		})
	default:
		st := buildSystem(*sys, *n, *m, *cells, *bnPairs, *dopeSeed)
		model, err = cbs.NewModel(st, cbs.GridConfig{Nx: *nxy, Ny: *nxy, Nz: *nz * *cells, Nf: *nf})
	}
	if err != nil {
		log.Fatal(err)
	}
	ef, err := model.FermiLevel(4)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%s: N = %d, EF = %.4f hartree (%.3f eV)",
		model.OperatorDesc(), model.N(), ef, units.HartreeToEV(ef))

	if *checkpointDir != "" {
		if err := os.MkdirAll(*checkpointDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	defaults := cbs.DefaultOptions()
	defaults.Parallel = cbs.Parallel{Top: *top, Mid: *mid, Ndm: *ndm}
	// Fault injection is env-gated (CBS_CHAOS, CBS_CHAOS_JOB,
	// CBS_CHAOS_CACHE, ...): nil in normal operation.
	inj := chaos.FromEnv()
	defaults.Chaos = inj

	srv, err := newServer(serverConfig{
		backend:       modelBackend(model, ef),
		workers:       *workers,
		queueDepth:    *queueDepth,
		cacheEntries:  *cacheEntries,
		sweepWorkers:  *sweepWorkers,
		checkpointDir: *checkpointDir,
		drainGrace:    *drainGrace,
		defaults:      defaults,
		chaos:         inj,
	})
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		// Stop accepting connections first, then drain the pool: give
		// in-flight jobs the grace period, then cancel them — canceled
		// sweeps have already journaled every completed energy.
		log.Printf("signal: draining (grace %s)", *drainGrace)
		shCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
		defer cancel()
		httpSrv.Shutdown(shCtx) //nolint:errcheck // drain decides the exit
		if err := srv.Drain(shCtx); err != nil {
			log.Printf("drain: in-flight jobs canceled after grace: %v", err)
		} else {
			log.Printf("drain: all jobs finished")
		}
	}()

	log.Printf("cbsd listening on %s (workers=%d queue=%d cache=%d)", *addr, *workers, *queueDepth, *cacheEntries)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-drained // the journal flushes before the process exits
}

// modelBackend adapts the public cbs.Model API to the server's backend.
// Transport composes the low-level NEGF sweep around the model's backend
// so the server can thread its cache-wrapped solve through it.
func modelBackend(model *cbs.Model, ef float64) backend {
	return backend{
		desc:  model.OperatorDesc(),
		ef:    ef,
		a:     model.CellLength(),
		solve: model.SolveCBSContext,
		sweep: model.SweepCBS,
		transport: func(ctx context.Context, solve sweep.SolveFunc, spec negf.Spec, opts core.Options, cfg sweep.Config) (*negf.Curve, error) {
			if cfg.OperatorDesc == "" {
				cfg.OperatorDesc = model.OperatorDesc()
			}
			return negf.TransmissionSweep(ctx, model.Backend(), solve, spec, opts, cfg)
		},
	}
}

// buildSystem constructs the served structure (mirrors cmd/cbs).
func buildSystem(sys string, n, m, cells, bnPairs int, seed int64) *cbs.Structure {
	vac := units.AngstromToBohr(3.5)
	fail := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	switch sys {
	case "al":
		st, err := cbs.AlBulk100(cells)
		fail(err)
		return st
	case "cnt":
		st, err := cbs.CNT(n, m, vac)
		fail(err)
		if cells > 1 {
			st, err = cbs.Repeat(st, cells)
			fail(err)
		}
		return st
	case "bundle7":
		tube, err := cbs.CNT(n, m, vac)
		fail(err)
		st, err := cbs.Bundle7(tube, vac)
		fail(err)
		return st
	case "crystalline":
		tube, err := cbs.CNT(n, m, vac)
		fail(err)
		st, err := cbs.CrystallineBundle(tube)
		fail(err)
		return st
	case "bncnt":
		tube, err := cbs.CNT(n, m, vac)
		fail(err)
		super, err := cbs.Repeat(tube, cells)
		fail(err)
		st, err := cbs.BNDope(super, bnPairs, seed)
		fail(err)
		return st
	default:
		log.Fatalf("unknown system %q", sys)
		return nil
	}
}
