package main

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestKillRestartAcceptance is the crash-safety acceptance run: a server
// with a checkpoint directory is killed abruptly (no drain, no journal
// flushes — the in-process SIGKILL model) with a mix of finished,
// running, and queued jobs. A successor on the same directory must:
//
//   - resolve every pre-crash job ID: finished jobs come back as restored
//     terminal snapshots, unfinished ones are re-adopted and run to done
//     (resuming sweeps from their checkpoint journals, not re-solving);
//   - leave no orphaned sweep journals — every <fp>.journal in the
//     checkpoint dir belongs to a job in the job log;
//   - continue every job's SSE stream gaplessly: a client that reconnects
//     with its pre-crash Last-Event-ID sees the remaining events with
//     contiguous ids through the terminal one.
func TestKillRestartAcceptance(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	fb := &fakeBackend{gate: gate, perGate: func(e float64) bool {
		return e > 0.1 // ev >= ~0.3: the sweep blocks from its third energy on
	}}
	s1, ts1 := newTestServer(t, fb, func(cfg *serverConfig) {
		cfg.workers = 1
		cfg.checkpointDir = dir
	})

	// Job 1 finishes before the crash.
	var doneSub submitResponse
	postJSON(t, ts1.URL+"/v1/solve", `{"energy_ev": -0.5}`, &doneSub)
	if j := waitJob(t, ts1.URL, doneSub.ID); j.State != "done" {
		t.Fatalf("pre-crash solve ended %s", j.State)
	}

	// Job 2 is a sweep caught mid-flight: two energies journaled, the
	// third blocked on the gate when the server dies.
	var sweepSub submitResponse
	postJSON(t, ts1.URL+"/v1/sweep",
		`{"energies_ev": [-0.2, -0.1, 0.3, 0.4, 0.5], "options": {"nint": 8}}`, &sweepSub)
	deadline := time.Now().Add(10 * time.Second)
	for {
		j := getJob(t, ts1.URL, sweepSub.ID)
		if j.Progress != nil && j.Progress.Done >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep never journaled its first two energies")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// An SSE client is mid-stream when the server dies: remember where it
	// got to.
	c := openSSE(t, ts1.URL, sweepSub.ID, "")
	var lastSeen int64
	for lastSeen == 0 {
		ev, ok := c.next(t)
		if !ok {
			t.Fatal("SSE stream ended before the crash")
		}
		if ev.Data.Ev == "progress" && ev.Data.Done >= 2 {
			lastSeen = ev.ID
		}
	}
	c.close()

	// Jobs 3 and 4 are still queued behind the single worker.
	var queuedSweep, queuedSolve submitResponse
	postJSON(t, ts1.URL+"/v1/sweep", `{"energies_ev": [-0.3, -0.25]}`, &queuedSweep)
	postJSON(t, ts1.URL+"/v1/solve", `{"energy_ev": -0.4}`, &queuedSolve)

	s1.mgr.Kill() // SIGKILL: no drain, no terminal records, contexts die
	ts1.Close()

	// Successor on the same checkpoint dir, physics unblocked.
	fb2 := &fakeBackend{}
	_, ts2 := newTestServer(t, fb2, func(cfg *serverConfig) {
		cfg.checkpointDir = dir
	})

	// Every pre-crash ID resolves; unfinished jobs run to done.
	finished := getJob(t, ts2.URL, doneSub.ID)
	if finished.State != "done" || !finished.Restored {
		t.Errorf("finished pre-crash job replayed as %s restored=%v, want done restored snapshot",
			finished.State, finished.Restored)
	}
	for _, id := range []string{sweepSub.ID, queuedSweep.ID, queuedSolve.ID} {
		if j := waitJob(t, ts2.URL, id); j.State != "done" {
			t.Fatalf("re-adopted job %s ended %s (%s)", id, j.State, j.Error)
		}
	}

	// The interrupted sweep resumed from its journal: the two pre-crash
	// energies were restored, not re-solved.
	j := getJob(t, ts2.URL, sweepSub.ID)
	if j.Sweep == nil || j.Sweep.Restored != 2 || j.Sweep.OK != 5 {
		t.Fatalf("resumed sweep report %+v, want restored=2 ok=5", j.Sweep)
	}
	// Successor solves: 3 sweep energies + 2 queued-sweep energies + 1
	// queued solve; the finished job was never re-run.
	if got := fb2.calls.Load(); got != 6 {
		t.Errorf("successor executed %d solves, want 6 (journaled energies restored, finished job untouched)", got)
	}

	// No orphaned sweep journals: every journal's fingerprint belongs to a
	// job the log knows.
	known := map[string]bool{sweepSub.Fingerprint: true, queuedSweep.Fingerprint: true}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	journals := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".journal") {
			continue
		}
		journals++
		fp := strings.TrimSuffix(e.Name(), ".journal")
		if !known[fp] {
			t.Errorf("orphaned sweep journal %s: no job in the log references it", e.Name())
		}
	}
	if journals == 0 {
		t.Error("no sweep journals survived the crash")
	}
	if _, err := os.Stat(filepath.Join(dir, "jobs.log")); err != nil {
		t.Fatalf("job log missing after restart: %v", err)
	}

	// SSE reconnect: resuming from the pre-crash Last-Event-ID replays the
	// rest of the stream — re-adoption, re-run, terminal — with contiguous
	// ids and no duplicates.
	c2 := openSSE(t, ts2.URL, sweepSub.ID, strconv.FormatInt(lastSeen, 10))
	defer c2.close()
	prev := lastSeen
	sawRequeue, sawFinal := false, false
	for {
		ev, ok := c2.next(t)
		if !ok {
			break
		}
		if ev.ID != prev+1 {
			t.Fatalf("SSE gap across restart: %d -> %d", prev, ev.ID)
		}
		prev = ev.ID
		if ev.Data.Ev == "state" && ev.Data.State == "queued" {
			sawRequeue = true
		}
		if ev.Data.Final {
			sawFinal = true
			if ev.Data.State != "done" {
				t.Errorf("stream ends %s, want done", ev.Data.State)
			}
		}
	}
	if !sawRequeue || !sawFinal {
		t.Errorf("reconnected stream missed re-adoption (%v) or terminal (%v) events", sawRequeue, sawFinal)
	}

	// The successor accepts new work and numbers past the replayed IDs.
	var newSub submitResponse
	postJSON(t, ts2.URL+"/v1/solve", `{"energy_ev": 0.7}`, &newSub)
	if newSub.ID <= queuedSolve.ID {
		t.Errorf("post-restart ID %s does not advance past pre-crash %s", newSub.ID, queuedSolve.ID)
	}
	if waitJob(t, ts2.URL, newSub.ID).State != "done" {
		t.Error("post-restart submission failed")
	}

	// A graceful drain of the successor leaves a log a third generation
	// replays without re-adopting anything live.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := activeServer.Load().Drain(ctx); err != nil {
		t.Fatalf("successor drain: %v", err)
	}
	resp, err := http.Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("drained successor healthz: HTTP %d, want 503", resp.StatusCode)
	}
}
