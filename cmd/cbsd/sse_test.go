package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// sseEvent is one parsed server-sent event frame.
type sseEvent struct {
	ID    int64
	Event string
	Data  struct {
		Seq   int64  `json:"seq"`
		Ev    string `json:"ev"`
		State string `json:"state"`
		Done  int    `json:"done"`
		Total int    `json:"total"`
		Error string `json:"error"`
		Final bool   `json:"final"`
	}
}

// sseClient reads one /v1/jobs/{id}/events stream.
type sseClient struct {
	resp       *http.Response
	rd         *bufio.Reader
	cancel     context.CancelFunc
	heartbeats int
}

// openSSE connects to a job's event stream, optionally resuming from
// lastEventID (the SSE reconnect header).
func openSSE(t *testing.T, base, id, lastEventID string) *sseClient {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		t.Fatalf("GET events: HTTP %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	return &sseClient{resp: resp, rd: bufio.NewReader(resp.Body), cancel: cancel}
}

func (c *sseClient) close() {
	c.resp.Body.Close()
	c.cancel()
}

// next parses frames until the next real event, counting comment
// heartbeats along the way; ok is false when the stream ends.
func (c *sseClient) next(t *testing.T) (sseEvent, bool) {
	t.Helper()
	var ev sseEvent
	got := false
	for {
		line, err := c.rd.ReadString('\n')
		if err != nil {
			return sseEvent{}, false
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if got {
				return ev, true
			}
		case strings.HasPrefix(line, ": "):
			c.heartbeats++
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.ParseInt(line[4:], 10, 64)
			if err != nil {
				t.Fatalf("bad SSE id line %q: %v", line, err)
			}
			ev.ID = n
			got = true
		case strings.HasPrefix(line, "event: "):
			ev.Event = line[7:]
			got = true
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(line[6:]), &ev.Data); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
			got = true
		}
	}
}

// TestJobEventsSSE: the live stream delivers queued → running → terminal
// with contiguous event ids, heartbeat comments while idle, and closes
// after the final event.
func TestJobEventsSSE(t *testing.T) {
	fb := &fakeBackend{gate: make(chan struct{})}
	_, ts := newTestServer(t, fb, func(cfg *serverConfig) {
		cfg.heartbeat = 20 * time.Millisecond
	})
	var sub submitResponse
	postJSON(t, ts.URL+"/v1/solve", `{"energy_ev": 0.25}`, &sub)

	c := openSSE(t, ts.URL, sub.ID, "")
	defer c.close()
	ev1, ok := c.next(t)
	if !ok || ev1.ID != 1 || ev1.Data.State != "queued" {
		t.Fatalf("first event %+v ok=%v, want id 1 queued", ev1, ok)
	}
	ev2, ok := c.next(t)
	if !ok || ev2.ID != 2 || ev2.Data.State != "running" {
		t.Fatalf("second event %+v ok=%v, want id 2 running", ev2, ok)
	}
	// The job is gated: the stream idles and must keep the connection
	// alive with comment heartbeats.
	time.Sleep(80 * time.Millisecond)
	close(fb.gate)
	ev3, ok := c.next(t)
	if !ok || ev3.ID != 3 || ev3.Data.State != "done" || !ev3.Data.Final {
		t.Fatalf("third event %+v ok=%v, want id 3 final done", ev3, ok)
	}
	if _, ok := c.next(t); ok {
		t.Error("stream stayed open after the final event")
	}
	if c.heartbeats == 0 {
		t.Error("no heartbeats on an idle stream")
	}
	for _, ev := range []sseEvent{ev1, ev2, ev3} {
		if ev.ID != ev.Data.Seq {
			t.Errorf("SSE id %d != payload seq %d", ev.ID, ev.Data.Seq)
		}
		if ev.Event != ev.Data.Ev {
			t.Errorf("SSE event %q != payload ev %q", ev.Event, ev.Data.Ev)
		}
	}
}

// TestJobEventsLastEventID: reconnecting with Last-Event-ID replays only
// the missed suffix; a malformed header is a 400, not a hung stream.
func TestJobEventsLastEventID(t *testing.T) {
	fb := &fakeBackend{}
	_, ts := newTestServer(t, fb, nil)
	var sub submitResponse
	postJSON(t, ts.URL+"/v1/sweep", `{"energies_ev": [0.1, 0.2, 0.3]}`, &sub)
	if j := waitJob(t, ts.URL, sub.ID); j.State != "done" {
		t.Fatalf("sweep ended %s", j.State)
	}

	// Full replay first, to learn the final seq.
	c := openSSE(t, ts.URL, sub.ID, "")
	var all []sseEvent
	for {
		ev, ok := c.next(t)
		if !ok {
			break
		}
		all = append(all, ev)
	}
	c.close()
	if len(all) < 4 { // queued, running, >=1 progress, done
		t.Fatalf("full replay has %d events, want >= 4: %+v", len(all), all)
	}
	for i, ev := range all {
		if ev.ID != int64(i+1) {
			t.Fatalf("replay ids not contiguous: %+v", all)
		}
	}
	if last := all[len(all)-1]; !last.Data.Final || last.Data.State != "done" {
		t.Fatalf("replay ends with %+v, want final done", last)
	}

	// Resume from the middle: only ids > 2 come back.
	c2 := openSSE(t, ts.URL, sub.ID, "2")
	defer c2.close()
	var tail []sseEvent
	for {
		ev, ok := c2.next(t)
		if !ok {
			break
		}
		tail = append(tail, ev)
	}
	if len(tail) != len(all)-2 || tail[0].ID != 3 {
		t.Fatalf("resume from 2 replayed %+v, want events 3..%d", tail, len(all))
	}

	// Malformed Last-Event-ID: typed 400.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+sub.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", "bogus")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad Last-Event-ID: HTTP %d, want 400", resp.StatusCode)
	}
}
