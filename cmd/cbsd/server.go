// server.go is the cbsd HTTP layer, kept separate from main so the tests
// (and the serve-smoke harness) can stand a full server on a fake or real
// backend without flags or signals.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cbs/internal/chaos"
	"cbs/internal/core"
	"cbs/internal/fingerprint"
	"cbs/internal/jobs"
	"cbs/internal/negf"
	"cbs/internal/rescache"
	"cbs/internal/sweep"
	"cbs/internal/units"
)

// backend is what the HTTP layer needs from the physics: the operator's
// identity and the two context-aware entry points of the public cbs API.
// main wires a real cbs.Model; tests wire fakes.
type backend struct {
	// desc is the operator descriptor (cbs.Model.OperatorDesc) that keys
	// every fingerprint this server derives.
	desc string
	// ef is the Fermi level (hartree): request energies arrive in eV
	// relative to it.
	ef float64
	// a is the 1D cell length (bohr), reported alongside results so
	// clients can convert k to units of pi/a.
	a float64
	// solve is cbs.Model.SolveCBSContext (or a test fake).
	solve func(ctx context.Context, e float64, opts core.Options) (*core.Result, error)
	// sweep is cbs.Model.SweepCBS (or a test fake).
	sweep func(ctx context.Context, es []float64, opts core.Options, cfg sweep.Config) (*sweep.Report, error)
	// transport runs the CBS -> NEGF pipeline with the supplied per-energy
	// solve — the server passes a cache-wrapped solve so a repeated
	// transport request (or a later /v1/solve at a shared energy) never
	// recomputes. nil disables POST /v1/transport (404-free: 400 with a
	// typed message).
	transport func(ctx context.Context, solve sweep.SolveFunc, spec negf.Spec, opts core.Options, cfg sweep.Config) (*negf.Curve, error)
}

// serverConfig parameterizes one cbsd instance.
type serverConfig struct {
	backend backend
	// workers / queueDepth bound the job pool (backpressure policy).
	workers    int
	queueDepth int
	// cacheEntries bounds the result cache.
	cacheEntries int
	// sweepWorkers is the per-sweep energy concurrency.
	sweepWorkers int
	// checkpointDir, when non-empty, makes the server crash-safe: every
	// sweep journals under <dir>/<fingerprint>.journal, every job event
	// journals to <dir>/jobs.log, and a restarted server replays the job
	// log and re-adopts unfinished jobs (resuming their sweep journals)
	// before accepting traffic.
	checkpointDir string
	// drainGrace bounds Drain when its context has no deadline (0 waits).
	drainGrace time.Duration
	// heartbeat is the SSE keepalive period (0 uses 15s; tests shorten).
	heartbeat time.Duration
	// defaults are the server's base solver options; request options
	// override field-by-field.
	defaults core.Options
	// chaos arms the serving-layer fault sites (nil in production).
	chaos *chaos.Injector
}

// server is one cbsd instance: job manager + result cache + HTTP mux.
type server struct {
	cfg   serverConfig
	mgr   *jobs.Manager
	cache *rescache.Cache
	mux   *http.ServeMux
	start time.Time

	// solveCount/solveNanos time actual backend solves (cache misses);
	// hits never touch them.
	solveCount atomic.Int64
	solveNanos atomic.Int64
}

// activeServer is the instance /metrics reads. expvar registration is
// process-global and permanent, so the var is published once and
// indirects through this pointer — tests that build several servers just
// repoint it.
var activeServer atomic.Pointer[server]

var publishOnce sync.Once

// newServer assembles a server and makes it the active metrics target.
// With a checkpoint directory it opens (or replays) the persistent job
// log first: jobs journaled by a previous process are re-adopted — their
// tasks rebuilt from the journaled request spec and re-enqueued under
// their original IDs — or typed-failed, before the first request lands.
// A job log written for a different operator is a startup error, not a
// silent reset.
func newServer(cfg serverConfig) (*server, error) {
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.queueDepth < 1 {
		cfg.queueDepth = 16
	}
	if cfg.cacheEntries < 1 {
		cfg.cacheEntries = 256
	}
	if cfg.sweepWorkers < 1 {
		cfg.sweepWorkers = 1
	}

	var store *jobs.Store
	var replayed []jobs.ReplayedJob
	if cfg.checkpointDir != "" {
		var err error
		store, replayed, err = jobs.OpenStore(
			filepath.Join(cfg.checkpointDir, "jobs.log"),
			fingerprint.Operator(cfg.backend.desc),
		)
		if err != nil {
			return nil, fmt.Errorf("opening job log: %w", err)
		}
		store.SetChaos(cfg.chaos)
	}

	s := &server{
		cfg: cfg,
		mgr: jobs.New(jobs.Config{
			Workers: cfg.workers, QueueDepth: cfg.queueDepth,
			Store: store, DrainGrace: cfg.drainGrace, Chaos: cfg.chaos,
		}),
		cache: rescache.New(cfg.cacheEntries),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.cache.SetChaos(cfg.chaos)
	s.mgr.Adopt(replayed, s.rebuildTask)

	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.Handle("GET /metrics", expvar.Handler())
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/bands", s.handleBands)
	s.mux.HandleFunc("POST /v1/transport", s.handleTransport)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)

	activeServer.Store(s)
	publishOnce.Do(func() {
		expvar.Publish("cbsd", expvar.Func(func() any {
			if cur := activeServer.Load(); cur != nil {
				return cur.metricsSnapshot()
			}
			return nil
		}))
	})
	return s, nil
}

// Handler returns the HTTP entry point.
func (s *server) Handler() http.Handler { return s.mux }

// Drain is the SIGTERM path: reject new work, let in-flight jobs finish
// until ctx expires, then cancel them (sweeps have already journaled
// every completed energy) and wait for the workers to unwind.
func (s *server) Drain(ctx context.Context) error { return s.mgr.Drain(ctx) }

// metricsSnapshot is the /metrics payload under the "cbsd" expvar.
func (s *server) metricsSnapshot() any {
	cs := s.cache.Stats()
	jm := s.mgr.Metrics()
	n := s.solveCount.Load()
	mean := 0.0
	if n > 0 {
		mean = float64(s.solveNanos.Load()) / float64(n) / 1e6
	}
	return map[string]any{
		"uptime_seconds": time.Since(s.start).Seconds(),
		"cache": map[string]any{
			"hits": cs.Hits, "misses": cs.Misses, "deduped": cs.Deduped,
			"puts":      cs.Puts,
			"evictions": cs.Evictions, "entries": cs.Entries, "in_flight": cs.InFlight,
		},
		"jobs": map[string]any{
			"submitted": jm.Submitted, "rejected": jm.Rejected,
			"completed": jm.Completed, "failed": jm.Failed, "canceled": jm.Canceled,
			"readopted": jm.Readopted, "restored": jm.Restored, "log_errors": jm.LogErrors,
			"queue_depth": jm.QueueDepth, "in_flight": jm.InFlight,
			"busy_ms": float64(jm.BusyNanos) / 1e6,
		},
		"solve": map[string]any{
			"count": n, "total_ms": float64(s.solveNanos.Load()) / 1e6, "mean_ms": mean,
		},
	}
}

// --- request/response schema ---

// optionsJSON is the client-settable slice of core.Options: exactly the
// result-affecting fields the fingerprint hashes, so a request's identity
// is fully determined by its body. The parallel layout stays server-side.
type optionsJSON struct {
	Nint        *int     `json:"nint,omitempty"`
	Nmm         *int     `json:"nmm,omitempty"`
	Nrh         *int     `json:"nrh,omitempty"`
	Delta       *float64 `json:"delta,omitempty"`
	LambdaMin   *float64 `json:"lambda_min,omitempty"`
	BiCGTol     *float64 `json:"bicg_tol,omitempty"`
	MaxIter     *int     `json:"max_iter,omitempty"`
	ResidualTol *float64 `json:"residual_tol,omitempty"`
	Balance     *bool    `json:"balance,omitempty"`
	Seed        *int64   `json:"seed,omitempty"`
	AutoExpand  *bool    `json:"auto_expand,omitempty"`
	MaxExpand   *int     `json:"max_expand,omitempty"`
	Precision   *string  `json:"precision,omitempty"`
}

// apply overlays the request options on the server defaults.
func (oj *optionsJSON) apply(base core.Options) core.Options {
	if oj == nil {
		return base
	}
	if oj.Nint != nil {
		base.Nint = *oj.Nint
	}
	if oj.Nmm != nil {
		base.Nmm = *oj.Nmm
	}
	if oj.Nrh != nil {
		base.Nrh = *oj.Nrh
	}
	if oj.Delta != nil {
		base.Delta = *oj.Delta
	}
	if oj.LambdaMin != nil {
		base.LambdaMin = *oj.LambdaMin
	}
	if oj.BiCGTol != nil {
		base.BiCGTol = *oj.BiCGTol
	}
	if oj.MaxIter != nil {
		base.MaxIter = *oj.MaxIter
	}
	if oj.ResidualTol != nil {
		base.ResidualTol = *oj.ResidualTol
	}
	if oj.Balance != nil {
		base.LoadBalanceStop = *oj.Balance
	}
	if oj.Seed != nil {
		base.Seed = *oj.Seed
	}
	if oj.AutoExpand != nil {
		base.AutoExpand = *oj.AutoExpand
	}
	if oj.MaxExpand != nil {
		base.MaxExpand = *oj.MaxExpand
	}
	if oj.Precision != nil {
		// "complex128" or "mixed"; core.Solve validates and rejects unknown
		// values (and mixed's SoA/Ndm=1 requirements) as a bad request.
		base.Precision = *oj.Precision
	}
	return base
}

// solveRequest is POST /v1/solve: one energy, in eV relative to EF or
// absolute hartree.
type solveRequest struct {
	EnergyEV      *float64     `json:"energy_ev,omitempty"`
	EnergyHartree *float64     `json:"energy_hartree,omitempty"`
	Options       *optionsJSON `json:"options,omitempty"`
}

// sweepRequest is POST /v1/sweep: an explicit energy list or a uniform
// window, both in eV relative to EF.
type sweepRequest struct {
	EnergiesEV []float64    `json:"energies_ev,omitempty"`
	EminEV     *float64     `json:"emin_ev,omitempty"`
	EmaxEV     *float64     `json:"emax_ev,omitempty"`
	NE         int          `json:"ne,omitempty"`
	Options    *optionsJSON `json:"options,omitempty"`
}

// bandsRequest is POST /v1/bands: a batch complex-band-structure request —
// an energy window (or explicit list) swept through the sweep engine, with
// the k-path projection built server-side. kmax_im (in units of pi/a)
// optionally drops fast-decaying evanescent branches from the projection;
// it is presentation-only and does not change the computation or its
// fingerprint.
type bandsRequest struct {
	EnergiesEV []float64    `json:"energies_ev,omitempty"`
	EminEV     *float64     `json:"emin_ev,omitempty"`
	EmaxEV     *float64     `json:"emax_ev,omitempty"`
	NE         int          `json:"ne,omitempty"`
	KmaxIm     float64      `json:"kmax_im,omitempty"`
	Options    *optionsJSON `json:"options,omitempty"`
}

// transportRequest is POST /v1/transport: a T(E) curve through a device —
// an energy window (or explicit list) swept through the CBS -> NEGF
// pipeline. The device is cells principal layers of the lead cell with
// optional per-cell diagonal barrier shifts (hartree). bias_hartree, when
// present, additionally integrates the Landauer I-V at those biases
// (presentation-time: it does not change the computation's fingerprint).
type transportRequest struct {
	EnergiesEV     []float64    `json:"energies_ev,omitempty"`
	EminEV         *float64     `json:"emin_ev,omitempty"`
	EmaxEV         *float64     `json:"emax_ev,omitempty"`
	NE             int          `json:"ne,omitempty"`
	Cells          int          `json:"cells,omitempty"`
	BarrierHartree []float64    `json:"barrier_hartree,omitempty"`
	Eta            float64      `json:"eta,omitempty"`
	PropagatingTol float64      `json:"propagating_tol,omitempty"`
	BiasHartree    []float64    `json:"bias_hartree,omitempty"`
	KTHartree      float64      `json:"kt_hartree,omitempty"`
	Options        *optionsJSON `json:"options,omitempty"`
}

// jobSpec is the journaled form of a request: everything needed to
// rebuild the job's task after a restart, in server units (hartree) with
// the client's option overlay — the overlay is replayed onto the current
// defaults, and the fingerprint guard catches any drift.
type jobSpec struct {
	Type            string       `json:"type"` // solve | sweep | bands | transport
	EnergyHartree   float64      `json:"energy_hartree,omitempty"`
	EnergiesHartree []float64    `json:"energies_hartree,omitempty"`
	KmaxIm          float64      `json:"kmax_im,omitempty"`
	Cells           int          `json:"cells,omitempty"`
	BarrierHartree  []float64    `json:"barrier_hartree,omitempty"`
	Eta             float64      `json:"eta,omitempty"`
	PropagatingTol  float64      `json:"propagating_tol,omitempty"`
	BiasHartree     []float64    `json:"bias_hartree,omitempty"`
	KTHartree       float64      `json:"kt_hartree,omitempty"`
	Options         *optionsJSON `json:"options,omitempty"`
}

// negfSpec reconstructs the NEGF half of a transport job spec.
func (js jobSpec) negfSpec(es []float64) negf.Spec {
	return negf.Spec{
		Energies: es,
		Device:   negf.Device{Cells: js.Cells, Barrier: js.BarrierHartree},
		Options:  negf.Options{Eta: js.Eta, PropagatingTol: js.PropagatingTol},
	}
}

// submitResponse acknowledges an accepted job (HTTP 202).
type submitResponse struct {
	ID          string `json:"id"`
	StatusURL   string `json:"status_url"`
	Fingerprint string `json:"fingerprint"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}

// progressJSON is per-energy sweep progress.
type progressJSON struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// energyJSON is one sweep energy's terminal state in a job response.
type energyJSON struct {
	Index       int               `json:"index"`
	EnergyEV    float64           `json:"energy_ev"`
	Status      sweep.Status      `json:"status"`
	Attempts    int               `json:"attempts,omitempty"`
	Restored    bool              `json:"restored,omitempty"`
	Escalations []string          `json:"escalations,omitempty"`
	Error       string            `json:"error,omitempty"`
	Result      *sweep.ResultJSON `json:"result,omitempty"`
}

// sweepJSON summarizes a finished sweep job.
type sweepJSON struct {
	OK       int          `json:"ok"`
	Degraded int          `json:"degraded"`
	Failed   int          `json:"failed"`
	Skipped  int          `json:"skipped"`
	Restored int          `json:"restored"`
	Attempts int          `json:"attempts"`
	Energies []energyJSON `json:"energies"`
}

// bandRowJSON is one (energy, k) point of a bands projection: the complex
// Bloch wavevector in units of pi/a (Re on a propagating branch, |Im| the
// decay rate of an evanescent one).
type bandRowJSON struct {
	EnergyEV float64 `json:"energy_ev"`
	KRePiA   float64 `json:"k_re_pi_a"`
	KImPiA   float64 `json:"k_im_pi_a"`
	Residual float64 `json:"residual,omitempty"`
}

// bandsJSON is the batch band-structure projection of a bands job.
type bandsJSON struct {
	KmaxIm float64       `json:"kmax_im,omitempty"`
	Rows   []bandRowJSON `json:"rows"`
}

// transportPointJSON is T(E) at one energy of a transport job.
type transportPointJSON struct {
	EnergyEV float64 `json:"energy_ev"`
	T        float64 `json:"t"`
	NOpen    int     `json:"n_open"`
	Beta     float64 `json:"beta,omitempty"`
	NFill    int     `json:"n_fill,omitempty"`
	Status   string  `json:"status"`
	Error    string  `json:"error,omitempty"`
}

// ivPointJSON is one Landauer I-V point.
type ivPointJSON struct {
	VHartree float64 `json:"v_hartree"`
	I        float64 `json:"i"`
}

// transportJSON is the curve of a finished transport job, plus the
// Landauer I-V if the request asked for biases.
type transportJSON struct {
	Points []transportPointJSON `json:"points"`
	IV     []ivPointJSON        `json:"iv,omitempty"`
}

// jobJSON is GET /v1/jobs/{id}.
type jobJSON struct {
	ID           string            `json:"id"`
	Kind         jobs.Kind         `json:"kind"`
	State        jobs.State        `json:"state"`
	Client       string            `json:"client,omitempty"`
	Fingerprint  string            `json:"fingerprint,omitempty"`
	Restored     bool              `json:"restored,omitempty"`
	Submitted    string            `json:"submitted"`
	Started      string            `json:"started,omitempty"`
	Finished     string            `json:"finished,omitempty"`
	Progress     *progressJSON     `json:"progress,omitempty"`
	CacheOutcome rescache.Outcome  `json:"cache_outcome,omitempty"`
	Error        string            `json:"error,omitempty"`
	CellLength   float64           `json:"cell_length_bohr,omitempty"`
	Result       *sweep.ResultJSON `json:"result,omitempty"`
	Sweep        *sweepJSON        `json:"sweep,omitempty"`
	Bands        *bandsJSON        `json:"bands,omitempty"`
	Transport    *transportJSON    `json:"transport,omitempty"`
}

// --- handlers ---

// writeJSON sends v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // response already committed
}

// retryAfterSeconds is the base 429 backoff hint. Each response jitters
// it by ±20% so a burst of rejected clients does not come back as the
// same synchronized burst one backoff later (retry stampede).
const retryAfterSeconds = 5.0

func retryAfter() string {
	jittered := retryAfterSeconds * (0.8 + 0.4*rand.Float64())
	secs := int(math.Round(jittered))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// writeError maps the job layer's typed sentinels onto HTTP status codes:
// a full queue is 429 with a jittered Retry-After (back off, the pool is
// saturated), draining is 503 (the process is going away), unknown IDs
// are 404.
func writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		w.Header().Set("Retry-After", retryAfter())
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
	case errors.Is(err, jobs.ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	case errors.Is(err, jobs.ErrNotFound):
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.mgr.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// resolveEnergy converts a solve request's energy to hartree.
func (s *server) resolveEnergy(req solveRequest) (float64, error) {
	switch {
	case req.EnergyHartree != nil:
		return *req.EnergyHartree, nil
	case req.EnergyEV != nil:
		return s.cfg.backend.ef + units.EVToHartree(*req.EnergyEV), nil
	default:
		return 0, errors.New("request must set energy_ev or energy_hartree")
	}
}

// clientID extracts the fairness key of a request: the X-CBS-Client
// header if the caller identifies itself, else the remote host — every
// unnamed caller on one machine shares a queue.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-CBS-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// clientWeight reads the X-CBS-Weight header (1..8; the jobs layer
// clamps). Weight buys a proportionally larger dispatch share under
// contention, nothing when the server is idle.
func clientWeight(r *http.Request) int {
	if v := r.Header.Get("X-CBS-Weight"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return 1
}

// submit journals and enqueues a job built from spec, answering 202 with
// the job ID or the mapped error.
func (s *server) submit(w http.ResponseWriter, r *http.Request, kind jobs.Kind, fp string, spec jobSpec, task jobs.Task) {
	raw, err := json.Marshal(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	id, err := s.mgr.Submit(jobs.Submission{
		Kind:        kind,
		Client:      clientID(r),
		Weight:      clientWeight(r),
		Fingerprint: fp,
		Spec:        raw,
		Task:        task,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{
		ID: id, StatusURL: "/v1/jobs/" + id, Fingerprint: fp,
	})
}

// solveTask builds the task of a single-energy solve: a cache-and-
// singleflight wrapped backend call.
func (s *server) solveTask(e float64, opts core.Options, fp string) jobs.Task {
	return func(ctx context.Context, _ func(int, int)) (jobs.Outcome, error) {
		res, outcome, err := s.cache.Do(ctx, fp, func(ctx context.Context) (*core.Result, error) {
			t0 := time.Now()
			res, err := s.cfg.backend.solve(ctx, e, opts)
			s.solveCount.Add(1)
			s.solveNanos.Add(int64(time.Since(t0)))
			return res, err
		})
		return jobs.Outcome{Result: res, CacheOutcome: outcome}, err
	}
}

// sweepTask builds the task of a sweep (or bands) job. fp keys the
// checkpoint journal; for a re-adopted job it is the journaled
// fingerprint, so a drifted server fails the resume (typed
// ErrFingerprintMismatch) instead of passing off different physics under
// an old job ID.
func (s *server) sweepTask(es []float64, opts core.Options, fp string) jobs.Task {
	return func(ctx context.Context, progress func(int, int)) (jobs.Outcome, error) {
		var done atomic.Int64
		scfg := sweep.Config{
			Workers:      s.cfg.sweepWorkers,
			OperatorDesc: s.cfg.backend.desc,
			Chaos:        s.cfg.chaos,
			OnEnergy: func(er sweep.EnergyResult) {
				progress(int(done.Add(1)), len(es))
				// Cross-pollinate the solve cache: a sweep energy is a
				// one-element sweep by fingerprint construction, so a
				// later POST /v1/solve at this energy is a cache hit.
				if er.Result != nil {
					s.cache.Put(fingerprint.Solve(s.cfg.backend.desc, er.Energy, opts), er.Result)
				}
			},
		}
		if s.cfg.checkpointDir != "" {
			// Journal keyed by the sweep's own fingerprint: resubmitting
			// the same sweep after a crash or restart resumes instead of
			// re-solving (Resume creates the file if it does not exist).
			scfg.CheckpointPath = filepath.Join(s.cfg.checkpointDir, fp+".journal")
			scfg.Resume = true
		}
		report, err := s.cfg.backend.sweep(ctx, es, opts, scfg)
		return jobs.Outcome{Report: report}, err
	}
}

// cachedSolve wraps the backend solve in the fingerprint-keyed result
// cache with singleflight: the per-energy unit of a transport sweep is a
// one-element sweep by fingerprint construction, so a repeated transport
// request — or a plain /v1/solve at one of its energies — costs no new
// solves. Only cache misses touch the solve timers.
func (s *server) cachedSolve(ctx context.Context, e float64, o core.Options) (*core.Result, error) {
	res, _, err := s.cache.Do(ctx, fingerprint.Solve(s.cfg.backend.desc, e, o), func(ctx context.Context) (*core.Result, error) {
		t0 := time.Now()
		res, err := s.cfg.backend.solve(ctx, e, o)
		s.solveCount.Add(1)
		s.solveNanos.Add(int64(time.Since(t0)))
		return res, err
	})
	return res, err
}

// transportTask builds the task of a transport job: the CBS sweep runs
// through the cache-wrapped solve, then the NEGF post-processing turns
// each energy into T(E). fp keys the checkpoint journal exactly like a
// sweep job's.
func (s *server) transportTask(spec negf.Spec, opts core.Options, fp string) jobs.Task {
	return func(ctx context.Context, progress func(int, int)) (jobs.Outcome, error) {
		var done atomic.Int64
		spec.Chaos = s.cfg.chaos
		scfg := sweep.Config{
			Workers:      s.cfg.sweepWorkers,
			OperatorDesc: s.cfg.backend.desc,
			Chaos:        s.cfg.chaos,
			OnEnergy: func(er sweep.EnergyResult) {
				progress(int(done.Add(1)), len(spec.Energies))
			},
		}
		if s.cfg.checkpointDir != "" {
			scfg.CheckpointPath = filepath.Join(s.cfg.checkpointDir, fp+".journal")
			scfg.Resume = true
		}
		curve, err := s.cfg.backend.transport(ctx, s.cachedSolve, spec, opts, scfg)
		return jobs.Outcome{Curve: curve}, err
	}
}

// rebuildTask reconstructs a replayed job's task from its journaled spec
// (the restart re-adoption path). The option overlay replays onto the
// *current* defaults; sweeps resume against the journaled fingerprint, so
// any drift in defaults or operator fails the resume rather than serving
// changed physics under the old ID.
func (s *server) rebuildTask(rj jobs.ReplayedJob) (jobs.Task, error) {
	var spec jobSpec
	if err := json.Unmarshal(rj.Spec, &spec); err != nil {
		return nil, fmt.Errorf("unreadable job spec: %w", err)
	}
	opts := spec.Options.apply(s.cfg.defaults)
	switch spec.Type {
	case "solve":
		fp := fingerprint.Solve(s.cfg.backend.desc, spec.EnergyHartree, opts)
		return s.solveTask(spec.EnergyHartree, opts, fp), nil
	case "sweep", "bands":
		if len(spec.EnergiesHartree) == 0 {
			return nil, errors.New("job spec has no energies")
		}
		return s.sweepTask(spec.EnergiesHartree, opts, rj.Fingerprint), nil
	case "transport":
		if len(spec.EnergiesHartree) == 0 {
			return nil, errors.New("job spec has no energies")
		}
		if s.cfg.backend.transport == nil {
			return nil, errors.New("this server has no transport backend")
		}
		return s.transportTask(spec.negfSpec(spec.EnergiesHartree), opts, rj.Fingerprint), nil
	default:
		return nil, fmt.Errorf("unknown job spec type %q", spec.Type)
	}
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("bad request body: %w", err))
		return
	}
	e, err := s.resolveEnergy(req)
	if err != nil {
		writeError(w, err)
		return
	}
	opts := req.Options.apply(s.cfg.defaults)
	fp := fingerprint.Solve(s.cfg.backend.desc, e, opts)
	spec := jobSpec{Type: "solve", EnergyHartree: e, Options: req.Options}
	s.submit(w, r, jobs.KindSolve, fp, spec, s.solveTask(e, opts, fp))
}

// sweepEnergies expands a sweep request to its hartree energy list.
func (s *server) sweepEnergies(req sweepRequest) ([]float64, error) {
	if len(req.EnergiesEV) > 0 {
		es := make([]float64, len(req.EnergiesEV))
		for i, ev := range req.EnergiesEV {
			es[i] = s.cfg.backend.ef + units.EVToHartree(ev)
		}
		return es, nil
	}
	if req.EminEV == nil || req.EmaxEV == nil || req.NE < 1 {
		return nil, errors.New("request must set energies_ev or emin_ev/emax_ev/ne")
	}
	es := make([]float64, req.NE)
	for i := range es {
		f := 0.0
		if req.NE > 1 {
			f = float64(i) / float64(req.NE-1)
		}
		es[i] = s.cfg.backend.ef + units.EVToHartree(*req.EminEV+(*req.EmaxEV-*req.EminEV)*f)
	}
	return es, nil
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("bad request body: %w", err))
		return
	}
	es, err := s.sweepEnergies(req)
	if err != nil {
		writeError(w, err)
		return
	}
	opts := req.Options.apply(s.cfg.defaults)
	fp := fingerprint.Key(s.cfg.backend.desc, es, opts)
	spec := jobSpec{Type: "sweep", EnergiesHartree: es, Options: req.Options}
	s.submit(w, r, jobs.KindSweep, fp, spec, s.sweepTask(es, opts, fp))
}

// handleBands is the batch endpoint: one request sweeps an energy window
// and comes back as band-structure rows (GET projects k in units of
// pi/a). A bands job shares its fingerprint — and therefore its
// checkpoint journal and cache entries — with the equivalent sweep: the
// kmax_im filter is presentation-time and costs nothing to change.
func (s *server) handleBands(w http.ResponseWriter, r *http.Request) {
	var req bandsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.KmaxIm < 0 {
		writeError(w, errors.New("kmax_im must be >= 0"))
		return
	}
	es, err := s.sweepEnergies(sweepRequest{
		EnergiesEV: req.EnergiesEV, EminEV: req.EminEV, EmaxEV: req.EmaxEV, NE: req.NE,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	opts := req.Options.apply(s.cfg.defaults)
	fp := fingerprint.Key(s.cfg.backend.desc, es, opts)
	spec := jobSpec{Type: "bands", EnergiesHartree: es, KmaxIm: req.KmaxIm, Options: req.Options}
	s.submit(w, r, jobs.KindBands, fp, spec, s.sweepTask(es, opts, fp))
}

// handleTransport is the CBS -> NEGF endpoint: one request sweeps an
// energy window and comes back as a transmission curve T(E) (plus the
// Landauer I-V when biases are given). The fingerprint covers the sweep
// identity and the device/NEGF options, so identical transport requests
// share their journal, and the per-energy solves share the result cache
// with /v1/solve and repeated transport submissions.
func (s *server) handleTransport(w http.ResponseWriter, r *http.Request) {
	var req transportRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("bad request body: %w", err))
		return
	}
	if s.cfg.backend.transport == nil {
		writeError(w, errors.New("this server has no transport backend"))
		return
	}
	es, err := s.sweepEnergies(sweepRequest{
		EnergiesEV: req.EnergiesEV, EminEV: req.EminEV, EmaxEV: req.EmaxEV, NE: req.NE,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	if req.Cells < 1 {
		req.Cells = 1
	}
	spec := jobSpec{
		Type: "transport", EnergiesHartree: es,
		Cells: req.Cells, BarrierHartree: req.BarrierHartree,
		Eta: req.Eta, PropagatingTol: req.PropagatingTol,
		BiasHartree: req.BiasHartree, KTHartree: req.KTHartree,
		Options: req.Options,
	}
	nspec := spec.negfSpec(es)
	if err := nspec.Device.Validate(); err != nil {
		writeError(w, err)
		return
	}
	opts := req.Options.apply(s.cfg.defaults)
	fp := fingerprint.Transport(s.cfg.backend.desc, es, opts, nspec.PostDesc())
	s.submit(w, r, jobs.KindTransport, fp, spec, s.transportTask(nspec, opts, fp))
}

// stripVectors drops the eigenvector payload (the dominant weight of a
// result) unless the client asked for it.
func stripVectors(rj *sweep.ResultJSON) *sweep.ResultJSON {
	if rj == nil {
		return nil
	}
	out := *rj
	out.Pairs = make([]sweep.PairJSON, len(rj.Pairs))
	for i, p := range rj.Pairs {
		p.Psi = nil
		out.Pairs[i] = p
	}
	return &out
}

func (s *server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	snap, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	withVectors := r.URL.Query().Get("vectors") == "1"
	project := func(res *core.Result) *sweep.ResultJSON {
		rj := sweep.EncodeResult(res)
		if !withVectors {
			rj = stripVectors(rj)
		}
		return rj
	}

	out := jobJSON{
		ID: snap.ID, Kind: snap.Kind, State: snap.State,
		Client: snap.Client, Fingerprint: snap.Fingerprint, Restored: snap.Restored,
		Submitted:    snap.Submitted.UTC().Format(time.RFC3339Nano),
		CacheOutcome: snap.Outcome.CacheOutcome,
		CellLength:   s.cfg.backend.a,
	}
	if !snap.Started.IsZero() {
		out.Started = snap.Started.UTC().Format(time.RFC3339Nano)
	}
	if !snap.Finished.IsZero() {
		out.Finished = snap.Finished.UTC().Format(time.RFC3339Nano)
	}
	if snap.Total > 0 {
		out.Progress = &progressJSON{Done: snap.Done, Total: snap.Total}
	}
	if snap.Err != nil {
		out.Error = snap.Err.Error()
	}
	if snap.Outcome.Result != nil {
		out.Result = project(snap.Outcome.Result)
	}
	if rep := snap.Outcome.Report; rep != nil {
		sj := &sweepJSON{
			OK: rep.OK, Degraded: rep.Degraded, Failed: rep.Failed,
			Skipped: rep.Skipped, Restored: rep.Restored, Attempts: rep.Attempts,
		}
		for _, er := range rep.Results {
			ej := energyJSON{
				Index:       er.Index,
				EnergyEV:    units.HartreeToEV(er.Energy - s.cfg.backend.ef),
				Status:      er.Status,
				Attempts:    er.Attempts,
				Restored:    er.FromJournal,
				Escalations: er.Escalations,
				Result:      project(er.Result),
			}
			if er.Err != nil {
				ej.Error = er.Err.Error()
			}
			sj.Energies = append(sj.Energies, ej)
		}
		out.Sweep = sj
		if snap.Kind == jobs.KindBands {
			out.Bands = s.bandsProjection(snap, rep)
		}
	}
	if snap.Outcome.Curve != nil {
		out.Transport = s.transportProjection(snap, snap.Outcome.Curve)
	}
	writeJSON(w, http.StatusOK, out)
}

// transportProjection converts a transport curve to response units and,
// when the journaled spec carries biases, integrates the Landauer I-V
// around the server's Fermi level (presentation-time, like the bands
// kmax_im filter).
func (s *server) transportProjection(snap jobs.Snapshot, curve *negf.Curve) *transportJSON {
	tj := &transportJSON{}
	for _, p := range curve.Points {
		tj.Points = append(tj.Points, transportPointJSON{
			EnergyEV: units.HartreeToEV(p.E - s.cfg.backend.ef),
			T:        p.T, NOpen: p.NOpen, Beta: p.Beta, NFill: p.NFill,
			Status: string(p.Status), Error: p.Err,
		})
	}
	var spec jobSpec
	json.Unmarshal(snap.Spec, &spec) //nolint:errcheck // the spec was journaled by us; no biases just skips the I-V
	if len(spec.BiasHartree) > 0 {
		iv := negf.LandauerIV(curve.OK(), negf.BiasSpec{
			EFermi: s.cfg.backend.ef, KT: spec.KTHartree, Biases: spec.BiasHartree,
		})
		for _, p := range iv {
			tj.IV = append(tj.IV, ivPointJSON{VHartree: p.V, I: p.I})
		}
	}
	return tj
}

// bandsProjection flattens a bands job's sweep report into (E, k) rows
// with k in units of pi/a, dropping evanescent branches beyond the
// request's kmax_im.
func (s *server) bandsProjection(snap jobs.Snapshot, rep *sweep.Report) *bandsJSON {
	var spec jobSpec
	json.Unmarshal(snap.Spec, &spec) //nolint:errcheck // the spec was journaled by us; a zero KmaxIm just keeps every row
	scale := s.cfg.backend.a / math.Pi
	bj := &bandsJSON{KmaxIm: spec.KmaxIm}
	for _, er := range rep.Results {
		if er.Result == nil {
			continue
		}
		for _, p := range er.Result.Pairs {
			kIm := imag(p.K) * scale
			if spec.KmaxIm > 0 && math.Abs(kIm) > spec.KmaxIm {
				continue
			}
			bj.Rows = append(bj.Rows, bandRowJSON{
				EnergyEV: units.HartreeToEV(er.Energy - s.cfg.backend.ef),
				KRePiA:   real(p.K) * scale,
				KImPiA:   kIm,
				Residual: p.Residual,
			})
		}
	}
	return bj
}

// handleJobEvents is the SSE stream of one job's lifecycle: every state
// transition and progress tick as a sequenced event, a comment heartbeat
// while idle, and Last-Event-ID replay on reconnect — the sequence
// numbers come from the job log, so the replay is gapless even across a
// server restart.
func (s *server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	var after int64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, fmt.Errorf("bad Last-Event-ID %q: %w", v, err))
			return
		}
		after = n
	}
	past, live, cancel, err := s.mgr.Watch(r.PathValue("id"), after)
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, errors.New("streaming unsupported by this connection"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	writeEvent := func(ev jobs.Event) bool {
		data, merr := json.Marshal(ev)
		if merr != nil {
			return true
		}
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Ev, data)
		fl.Flush()
		return ev.Final
	}
	for _, ev := range past {
		if writeEvent(ev) {
			return
		}
	}
	if live == nil {
		return // terminal job: the backlog was the whole story
	}
	hb := s.cfg.heartbeat
	if hb <= 0 {
		hb = 15 * time.Second
	}
	ticker := time.NewTicker(hb)
	defer ticker.Stop()
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				// We fell subBuffer events behind and were disconnected;
				// the client's EventSource reconnects with Last-Event-ID
				// and replays the gap.
				return
			}
			if writeEvent(ev) {
				return
			}
		case <-ticker.C:
			fmt.Fprint(w, ": hb\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleJobCancel is DELETE /v1/jobs/{id}: cancellation for live jobs
// (202 — the wind-down is asynchronous), idempotent success for jobs
// already in a terminal state (200 with that state, so retrying a cancel
// is always safe).
func (s *server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, err := s.mgr.Get(id)
	if err != nil {
		writeError(w, err)
		return
	}
	if snap.State.Terminal() {
		writeJSON(w, http.StatusOK, map[string]any{"id": id, "state": snap.State})
		return
	}
	if err := s.mgr.Cancel(id); err != nil {
		writeError(w, err)
		return
	}
	snap, err = s.mgr.Get(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"id": id, "state": snap.State})
}
