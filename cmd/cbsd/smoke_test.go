//go:build servesmoke

// Serve-smoke: an end-to-end exercise of cbsd against the real solver —
// a real TCP listener, a real Al(100) model on a small grid, a POSTed
// solve polled to completion, and a repeat request that must hit the
// cache. The physics is projected into testdata/smoke_golden.json with
// k rounded to 1e-6 (regenerate with -update), so a drift in the served
// numbers — not just the schema — fails CI. Run via `make serve-smoke`
// or `go test -tags servesmoke -run TestServeSmoke ./cmd/cbsd`.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"cbs"
)

var update = flag.Bool("update", false, "rewrite the golden file")

// smokePair is one eigenpair reduced to its stable observables: the
// complex Bloch factor's magnitude (decay per cell) and k rounded to a
// tolerance that absorbs cross-platform floating-point noise.
type smokePair struct {
	KRe          float64 `json:"k_re"`
	KIm          float64 `json:"k_im"`
	DecayPerCell float64 `json:"decay_per_cell"`
}

// smokeReport is the golden projection of the smoke run.
type smokeReport struct {
	State         string      `json:"state"`
	RepeatOutcome string      `json:"repeat_cache_outcome"`
	Rank          int         `json:"rank"`
	Nint          int         `json:"nint"`
	Nrh           int         `json:"nrh"`
	Degraded      bool        `json:"degraded"`
	ResidualOK    bool        `json:"residual_ok"`
	Pairs         []smokePair `json:"pairs"`
}

func round6(x float64) float64 {
	r := math.Round(x*1e6) / 1e6
	if r == 0 {
		return 0 // normalize -0: its JSON rendering is platform noise
	}
	return r
}

func TestServeSmoke(t *testing.T) {
	st, err := cbs.AlBulk100(1)
	if err != nil {
		t.Fatal(err)
	}
	model, err := cbs.NewModel(st, cbs.GridConfig{Nx: 6, Ny: 6, Nz: 8, Nf: 4})
	if err != nil {
		t.Fatal(err)
	}
	ef, err := model.FermiLevel(4)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(serverConfig{
		backend:      modelBackend(model, ef),
		workers:      2,
		queueDepth:   8,
		cacheEntries: 16,
		sweepWorkers: 1,
		defaults:     cbs.DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}

	// A real listener on a random port, served exactly as main serves.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck // closed by hs.Close
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", hresp.StatusCode)
	}

	body := `{"energy_ev": 0.25, "options": {"nint": 8, "nmm": 4, "nrh": 6}}`
	var sub submitResponse
	if resp := postJSON(t, base+"/v1/solve", body, &sub); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/solve: HTTP %d", resp.StatusCode)
	}
	j := waitJob(t, base, sub.ID)
	if j.State != "done" {
		t.Fatalf("solve ended %s: %s", j.State, j.Error)
	}
	if j.Result == nil || len(j.Result.Pairs) == 0 {
		t.Fatal("solve returned no eigenpairs")
	}

	// The identical request again: served from the cache, no second solve.
	var sub2 submitResponse
	postJSON(t, base+"/v1/solve", body, &sub2)
	j2 := waitJob(t, base, sub2.ID)
	if j2.State != "done" {
		t.Fatalf("repeat solve ended %s: %s", j2.State, j2.Error)
	}

	report := smokeReport{
		State:         string(j.State),
		RepeatOutcome: string(j2.CacheOutcome),
		Rank:          j.Result.Rank,
		Nint:          j.Result.Diagnostics.Nint,
		Nrh:           j.Result.Diagnostics.Nrh,
		Degraded:      j.Result.Diagnostics.Degraded,
		ResidualOK:    true,
	}
	for _, p := range j.Result.Pairs {
		if p.Residual > 1e-4 {
			report.ResidualOK = false
		}
		report.Pairs = append(report.Pairs, smokePair{
			KRe:          round6(p.K[0]),
			KIm:          round6(p.K[1]),
			DecayPerCell: round6(math.Hypot(p.Lambda[0], p.Lambda[1])),
		})
	}
	sort.Slice(report.Pairs, func(a, b int) bool {
		pa, pb := report.Pairs[a], report.Pairs[b]
		if pa.KIm != pb.KIm {
			return pa.KIm < pb.KIm
		}
		return pa.KRe < pb.KRe
	})

	got, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "smoke_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("smoke run drifted from the golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
