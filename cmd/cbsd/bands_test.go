package main

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"testing"
)

// decodeBody decodes a response body, closing it.
func decodeBody(t *testing.T, resp *http.Response, out any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestBandsEndpoint: POST /v1/bands sweeps the window and projects every
// eigenpair to (E, k/(pi/a)) rows; kmax_im filters evanescent branches at
// presentation time without changing the job's fingerprint.
func TestBandsEndpoint(t *testing.T) {
	fb := &fakeBackend{}
	_, ts := newTestServer(t, fb, nil)

	var sub submitResponse
	resp := postJSON(t, ts.URL+"/v1/bands", `{"energies_ev": [0.1, 0.2]}`, &sub)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST bands: HTTP %d", resp.StatusCode)
	}
	j := waitJob(t, ts.URL, sub.ID)
	if j.State != "done" || j.Kind != "bands" {
		t.Fatalf("bands job: state %s kind %s (%s)", j.State, j.Kind, j.Error)
	}
	if j.Bands == nil {
		t.Fatal("done bands job has no bands projection")
	}
	if len(j.Bands.Rows) != 2 { // one eigenpair per energy from the fake
		t.Fatalf("%d band rows, want 2: %+v", len(j.Bands.Rows), j.Bands.Rows)
	}
	// The fake solve returns K = 0.3 + 0.05i (1/bohr) at a = 7.5 bohr:
	// k·a/pi = K * a/pi.
	scale := 7.5 / math.Pi
	for _, row := range j.Bands.Rows {
		if math.Abs(row.KRePiA-0.3*scale) > 1e-12 || math.Abs(row.KImPiA-0.05*scale) > 1e-12 {
			t.Errorf("row %+v, want k = (%g, %g) pi/a", row, 0.3*scale, 0.05*scale)
		}
	}

	// kmax_im below the fake's decay rate filters every row, shares the
	// fingerprint (the filter is not part of the computation), and the
	// sweep report stays complete.
	var sub2 submitResponse
	body := fmt.Sprintf(`{"energies_ev": [0.1, 0.2], "kmax_im": %g}`, 0.04*scale)
	postJSON(t, ts.URL+"/v1/bands", body, &sub2)
	if sub2.Fingerprint != sub.Fingerprint {
		t.Errorf("kmax_im changed the fingerprint: %s vs %s", sub2.Fingerprint, sub.Fingerprint)
	}
	j2 := waitJob(t, ts.URL, sub2.ID)
	if j2.State != "done" || len(j2.Bands.Rows) != 0 {
		t.Fatalf("filtered bands job: state %s rows %+v, want done with 0 rows", j2.State, j2.Bands.Rows)
	}
	if j2.Bands.KmaxIm == 0 || j2.Sweep == nil || j2.Sweep.OK != 2 {
		t.Errorf("filter must echo kmax_im and keep the sweep report: %+v / %+v", j2.Bands, j2.Sweep)
	}

	// A bands job and the equivalent sweep are the same computation.
	var sweepSub submitResponse
	postJSON(t, ts.URL+"/v1/sweep", `{"energies_ev": [0.1, 0.2]}`, &sweepSub)
	if sweepSub.Fingerprint != sub.Fingerprint {
		t.Errorf("bands fingerprint %s != equivalent sweep %s", sub.Fingerprint, sweepSub.Fingerprint)
	}

	// Invalid filter: typed 400.
	if resp := postJSON(t, ts.URL+"/v1/bands", `{"energies_ev": [0.1], "kmax_im": -1}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("kmax_im < 0: HTTP %d, want 400", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/v1/bands", `{}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty bands request: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestCancelIdempotentOnTerminal: DELETE on a finished job is a 200 with
// the terminal state — retrying a cancel is always safe — while DELETE on
// a live job stays a 202.
func TestCancelIdempotentOnTerminal(t *testing.T) {
	fb := &fakeBackend{}
	_, ts := newTestServer(t, fb, nil)
	var sub submitResponse
	postJSON(t, ts.URL+"/v1/solve", `{"energy_ev": 0.3}`, &sub)
	if j := waitJob(t, ts.URL, sub.ID); j.State != "done" {
		t.Fatalf("job ended %s", j.State)
	}
	for i := 0; i < 2; i++ { // idempotent: same answer every time
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			ID    string `json:"id"`
			State string `json:"state"`
		}
		decodeBody(t, resp, &body)
		if resp.StatusCode != http.StatusOK || body.State != "done" {
			t.Fatalf("DELETE %d on terminal job: HTTP %d state %q, want 200 done", i, resp.StatusCode, body.State)
		}
	}
}

// TestRetryAfterJitter: 429s carry a jittered Retry-After around the 5s
// base (±20%) so rejected clients do not stampede back in lockstep.
func TestRetryAfterJitter(t *testing.T) {
	fb := &fakeBackend{gate: make(chan struct{})}
	defer close(fb.gate)
	_, ts := newTestServer(t, fb, func(cfg *serverConfig) {
		cfg.workers = 1
		cfg.queueDepth = 1
	})
	// Fill the system (1 running + 1 queued), then draw rejections.
	for i := 0; i < 2; i++ {
		body := fmt.Sprintf(`{"energy_ev": %g}`, 0.1*float64(i+1))
		if resp := postJSON(t, ts.URL+"/v1/solve", body, nil); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fill request %d: HTTP %d", i, resp.StatusCode)
		}
	}
	for i := 0; i < 20; i++ {
		body := fmt.Sprintf(`{"energy_ev": %g}`, 1.0+0.1*float64(i))
		resp := postJSON(t, ts.URL+"/v1/solve", body, nil)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("overflow request %d: HTTP %d, want 429", i, resp.StatusCode)
		}
		ra := resp.Header.Get("Retry-After")
		secs, err := strconv.Atoi(ra)
		if err != nil {
			t.Fatalf("Retry-After %q is not an integer: %v", ra, err)
		}
		if secs < 4 || secs > 6 { // 5s ± 20%, rounded
			t.Errorf("Retry-After %ds outside the jitter window [4, 6]", secs)
		}
	}
}
