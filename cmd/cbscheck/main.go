// Command cbscheck is the repository's vettool: it bundles the five
// cbs-specific analyzers (hotpathalloc, shapepanic, cmplxhot, lockedmerge,
// soalayout)
// behind the cmd/go custom-vettool protocol, so CI can run
//
//	go vet -vettool=$(pwd)/bin/cbscheck ./...
//
// and developers can run it standalone over package patterns:
//
//	go run ./cmd/cbscheck ./...
//
// The protocol (implemented against cmd/go/internal/work's vet support):
//
//   - `cbscheck -V=full` prints a version line ending in a buildID= field
//     derived from the binary's content hash, so the go build cache
//     invalidates vet results when the tool changes.
//   - `cbscheck -flags` prints the tool's flags as JSON so cmd/go can
//     validate pass-through vet flags.
//   - `cbscheck [flags] <objdir>/vet.cfg` analyzes one package unit
//     described by the JSON config, reading dependency facts from the
//     PackageVetx files and always writing its own facts to VetxOutput.
//
// Analysis is restricted to this module's packages; for dependency units
// outside the module the tool writes an empty facts file and succeeds, so
// vetting the standard library costs nothing.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cbs/internal/analysis/cmplxhot"
	"cbs/internal/analysis/framework"
	"cbs/internal/analysis/hotpathalloc"
	"cbs/internal/analysis/load"
	"cbs/internal/analysis/lockedmerge"
	"cbs/internal/analysis/shapepanic"
	"cbs/internal/analysis/soalayout"
)

// modulePrefix gates which import paths are analyzed (and typechecked) in
// vettool mode; everything else only gets an empty facts file.
const modulePrefix = "cbs"

var analyzers = []*framework.Analyzer{
	hotpathalloc.Analyzer,
	shapepanic.Analyzer,
	cmplxhot.Analyzer,
	lockedmerge.Analyzer,
	soalayout.Analyzer,
}

func main() {
	// cmd/go probes the tool identity with -V=full before anything else.
	if len(os.Args) == 2 && (os.Args[1] == "-V=full" || os.Args[1] == "--V=full") {
		fmt.Printf("cbscheck version devel buildID=%s\n", selfID())
		return
	}

	fs := flag.NewFlagSet("cbscheck", flag.ExitOnError)
	jsonFlag := fs.Bool("json", false, "emit diagnostics as JSON to stdout instead of text to stderr")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, "run the "+a.Name+" analyzer: "+a.Doc)
	}
	printFlags := fs.Bool("flags", false, "print analyzer flags in JSON (cmd/go protocol)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cbscheck [flags] <vet.cfg | package patterns>\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	if *printFlags {
		emitFlags(fs)
		return
	}

	var active []*framework.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0], active, *jsonFlag))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(standalone(args, active, *jsonFlag))
}

// selfID hashes the tool binary so the build cache re-vets when it changes.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// emitFlags prints the flag set in the JSON shape cmd/go's vet expects.
func emitFlags(fs *flag.FlagSet) {
	type jsonFlagDesc struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlagDesc
	fs.VisitAll(func(f *flag.Flag) {
		isBool := false
		if b, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
			isBool = b.IsBoolFlag()
		}
		out = append(out, jsonFlagDesc{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	data, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cbscheck: marshaling flags: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// vetConfig mirrors the JSON unit description cmd/go writes to vet.cfg.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one vet.cfg unit and returns the process exit code.
func unitcheck(cfgPath string, active []*framework.Analyzer, asJSON bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cbscheck: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cbscheck: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Dependency units outside the module carry no cbs facts; skip the
	// typecheck entirely and hand cmd/go an empty facts file to cache.
	// Test variants carry an ImportPath like "p [p.test]"; strip the suffix.
	base := strings.Fields(cfg.ImportPath)[0]
	if base != modulePrefix && !strings.HasPrefix(base, modulePrefix+"/") {
		return writeVetx(cfg.VetxOutput, nil)
	}

	// Analyze only the non-test sources: the invariants govern library
	// code, and external test units ("pkg_test") have no non-test files.
	var goFiles []string
	for _, name := range cfg.GoFiles {
		if !strings.HasSuffix(name, "_test.go") {
			goFiles = append(goFiles, name)
		}
	}
	if len(goFiles) == 0 {
		return writeVetx(cfg.VetxOutput, nil)
	}

	pkg, err := load.TypeCheckFiles(strings.Fields(cfg.ImportPath)[0], cfg.Dir, goFiles, cfg.PackageFile, cfg.ImportMap)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg.VetxOutput, nil)
		}
		fmt.Fprintf(os.Stderr, "cbscheck: %v\n", err)
		return 1
	}

	factCache := make(map[string]map[string]string)
	readFact := func(pkgPath, key string) (string, bool) {
		facts, ok := factCache[pkgPath]
		if !ok {
			file, have := cfg.PackageVetx[pkgPath]
			if !have {
				return "", false
			}
			blob, err := os.ReadFile(file)
			if err != nil || json.Unmarshal(blob, &facts) != nil {
				factCache[pkgPath] = nil
				return "", false
			}
			factCache[pkgPath] = facts
		}
		if facts == nil {
			return "", false
		}
		return facts[key], true
	}

	ownFacts := make(map[string]string)
	diags := runAnalyzers(pkg, active, readFact, func(key, data string) { ownFacts[key] = data })

	if code := writeVetx(cfg.VetxOutput, ownFacts); code != 0 {
		return code
	}
	if cfg.VetxOnly || len(diags) == 0 {
		return 0
	}
	if asJSON {
		printJSON(cfg.ImportPath, pkg, diags)
		return 0
	}
	printText(pkg, diags)
	return 2
}

// writeVetx persists the facts blob; cmd/go opens this file after every
// successful run to cache it, so it must exist even when empty.
func writeVetx(path string, facts map[string]string) int {
	if path == "" {
		return 0
	}
	if facts == nil {
		facts = map[string]string{}
	}
	blob, err := json.Marshal(facts)
	if err == nil {
		err = os.WriteFile(path, blob, 0o666)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cbscheck: writing facts: %v\n", err)
		return 1
	}
	return 0
}

// standalone analyzes package patterns directly (no vet.cfg), propagating
// facts in memory: `go list -deps` order guarantees dependencies first.
func standalone(patterns []string, active []*framework.Analyzer, asJSON bool) int {
	pkgs, err := load.Packages(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cbscheck: %v\n", err)
		return 1
	}
	allFacts := make(map[string]map[string]string)
	exit := 0
	for _, pkg := range pkgs {
		facts := make(map[string]string)
		readFact := func(pkgPath, key string) (string, bool) {
			m, ok := allFacts[pkgPath]
			if !ok {
				return "", false
			}
			return m[key], true
		}
		diags := runAnalyzers(pkg, active, readFact, func(key, data string) { facts[key] = data })
		allFacts[pkg.ImportPath] = facts
		if len(diags) == 0 {
			continue
		}
		if asJSON {
			printJSON(pkg.ImportPath, pkg, diags)
		} else {
			printText(pkg, diags)
		}
		exit = 2
	}
	if asJSON {
		exit = 0
	}
	return exit
}

// runAnalyzers runs the active analyzers over one package and returns the
// diagnostics in (file, offset) order.
func runAnalyzers(pkg *load.Package, active []*framework.Analyzer,
	readFact func(string, string) (string, bool), writeFact func(string, string)) []framework.Diagnostic {

	// Drop test files from the analysis view (standalone loads may include
	// in-package _test.go files).
	var files = pkg.Files[:0:0]
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		if !strings.HasSuffix(name, "_test.go") {
			files = append(files, f)
		}
	}

	var diags []framework.Diagnostic
	for _, a := range active {
		pass := &framework.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d framework.Diagnostic) { diags = append(diags, d) },
			ReadFact:  readFact,
			WriteFact: writeFact,
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "cbscheck: %s: %v\n", a.Name, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
	return diags
}

func printText(pkg *load.Package, diags []framework.Diagnostic) {
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", relPos(pos.String()), d.Message, d.Analyzer)
	}
}

// printJSON emits the go vet -json shape: {"importpath": {"analyzer": [...]}}.
func printJSON(importPath string, pkg *load.Package, diags []framework.Diagnostic) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := make(map[string][]jsonDiag)
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
			Posn:    pkg.Fset.Position(d.Pos).String(),
			Message: d.Message,
		})
	}
	out := map[string]map[string][]jsonDiag{importPath: byAnalyzer}
	blob, err := json.MarshalIndent(out, "", "\t")
	if err != nil {
		fmt.Fprintf(os.Stderr, "cbscheck: %v\n", err)
		return
	}
	os.Stdout.Write(blob)
	fmt.Println()
}

// relPos trims the working directory from a position for readable output.
func relPos(s string) string {
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, s); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
	}
	return s
}
