// Command cbscheck is the repository's vettool: it bundles the nine
// cbs-specific analyzers (hotpathalloc, shapepanic, cmplxhot, lockedmerge,
// soalayout, ctxflow, errsentinel, chaossite, fsyncdisc)
// behind the cmd/go custom-vettool protocol, so CI can run
//
//	go vet -vettool=$(pwd)/bin/cbscheck ./...
//
// and developers can run it standalone over package patterns:
//
//	go run ./cmd/cbscheck ./...
//
// The protocol (implemented against cmd/go/internal/work's vet support):
//
//   - `cbscheck -V=full` prints a version line ending in a buildID= field
//     derived from the binary's content hash, so the go build cache
//     invalidates vet results when the tool changes.
//   - `cbscheck -flags` prints the tool's flags as JSON so cmd/go can
//     validate pass-through vet flags.
//   - `cbscheck [flags] <objdir>/vet.cfg` analyzes one package unit
//     described by the JSON config, reading dependency facts from the
//     PackageVetx files and always writing its own facts to VetxOutput.
//
// With -tests the analysis view includes _test.go files: in vettool mode
// the test-variant units keep their test sources, and standalone loads use
// `go list -test`. Analyzers that scope themselves to library code skip
// test files on their own; analyzers whose invariants span production and
// test code (chaossite's seed-matrix coverage) only activate fully under
// -tests.
//
// -allowlist names a committed file of findings to suppress, one per line:
//
//	<analyzer>\t<file>\t<exact message>
//
// with the file matched by path suffix (so the committed form is
// module-relative) and # starting a comment. It exists for findings that
// cannot carry an in-source //cbs: waiver (generated code, fixtures).
//
// Analysis is restricted to this module's packages; for dependency units
// outside the module the tool writes an empty facts file and succeeds, so
// vetting the standard library costs nothing.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cbs/internal/analysis/chaossite"
	"cbs/internal/analysis/cmplxhot"
	"cbs/internal/analysis/ctxflow"
	"cbs/internal/analysis/errsentinel"
	"cbs/internal/analysis/framework"
	"cbs/internal/analysis/fsyncdisc"
	"cbs/internal/analysis/hotpathalloc"
	"cbs/internal/analysis/load"
	"cbs/internal/analysis/lockedmerge"
	"cbs/internal/analysis/shapepanic"
	"cbs/internal/analysis/soalayout"
)

// modulePrefix gates which import paths are analyzed (and typechecked) in
// vettool mode; everything else only gets an empty facts file.
const modulePrefix = "cbs"

var analyzers = []*framework.Analyzer{
	hotpathalloc.Analyzer,
	shapepanic.Analyzer,
	cmplxhot.Analyzer,
	lockedmerge.Analyzer,
	soalayout.Analyzer,
	ctxflow.Analyzer,
	errsentinel.Analyzer,
	chaossite.Analyzer,
	fsyncdisc.Analyzer,
}

// options carries the run-shaping flags through both driver modes.
type options struct {
	tests     bool       // keep _test.go files in the analysis view
	asJSON    bool       // print diagnostics as JSON on stdout
	allowlist *allowlist // findings suppressed by the committed allowlist
}

func main() {
	// cmd/go probes the tool identity with -V=full before anything else.
	if len(os.Args) == 2 && (os.Args[1] == "-V=full" || os.Args[1] == "--V=full") {
		fmt.Printf("cbscheck version devel buildID=%s\n", selfID())
		return
	}

	fs := flag.NewFlagSet("cbscheck", flag.ExitOnError)
	jsonFlag := fs.Bool("json", false, "emit diagnostics as JSON to stdout instead of text to stderr")
	testsFlag := fs.Bool("tests", false, "include _test.go files in the analysis view")
	allowFlag := fs.String("allowlist", "", "file of findings to suppress (analyzer<TAB>file<TAB>message per line)")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, "run the "+a.Name+" analyzer: "+a.Doc)
	}
	printFlags := fs.Bool("flags", false, "print analyzer flags in JSON (cmd/go protocol)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cbscheck [flags] <vet.cfg | package patterns>\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	if *printFlags {
		emitFlags(fs)
		return
	}

	var active []*framework.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	opts := options{tests: *testsFlag, asJSON: *jsonFlag}
	if *allowFlag != "" {
		al, err := loadAllowlist(*allowFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cbscheck: %v\n", err)
			os.Exit(1)
		}
		opts.allowlist = al
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0], active, opts))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(standalone(args, active, opts))
}

// selfID hashes the tool binary so the build cache re-vets when it changes.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// emitFlags prints the flag set in the JSON shape cmd/go's vet expects.
func emitFlags(fs *flag.FlagSet) {
	type jsonFlagDesc struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlagDesc
	fs.VisitAll(func(f *flag.Flag) {
		isBool := false
		if b, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
			isBool = b.IsBoolFlag()
		}
		out = append(out, jsonFlagDesc{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	data, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cbscheck: marshaling flags: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// allowlist is the committed set of suppressed findings: exact (analyzer,
// message) pairs keyed to a file by path suffix.
type allowlist struct {
	entries []allowEntry
}

type allowEntry struct {
	analyzer string
	file     string // matched as a path suffix of the diagnostic's filename
	message  string // exact message text
}

// loadAllowlist parses an allowlist file. Blank lines and #-comments are
// skipped; anything else must be analyzer<TAB>file<TAB>message.
func loadAllowlist(path string) (*allowlist, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("allowlist: %w", err)
	}
	al := &allowlist{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" || strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("allowlist %s:%d: want analyzer<TAB>file<TAB>message", path, i+1)
		}
		al.entries = append(al.entries, allowEntry{analyzer: parts[0], file: parts[1], message: parts[2]})
	}
	return al, nil
}

// allows reports whether the finding is suppressed.
func (al *allowlist) allows(analyzer, filename, message string) bool {
	if al == nil {
		return false
	}
	for _, e := range al.entries {
		if e.analyzer == analyzer && e.message == message &&
			(filename == e.file || strings.HasSuffix(filename, "/"+e.file)) {
			return true
		}
	}
	return false
}

// vetConfig mirrors the JSON unit description cmd/go writes to vet.cfg.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one vet.cfg unit and returns the process exit code.
func unitcheck(cfgPath string, active []*framework.Analyzer, opts options) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cbscheck: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cbscheck: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	pkg, diags, err := runUnit(&cfg, active, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cbscheck: %v\n", err)
		return 1
	}
	if pkg == nil || cfg.VetxOnly || len(diags) == 0 {
		return 0
	}
	if opts.asJSON {
		printJSON(cfg.ImportPath, pkg, diags)
		return 0
	}
	printText(pkg, diags)
	return 2
}

// runUnit is the driver core of unitcheck, separated so tests can feed it
// hand-built unit configs: typecheck the unit, plumb dependency facts from
// the PackageVetx files, run the analyzers, persist own facts to
// VetxOutput. A nil returned package means the unit was skipped (outside
// the module, no analyzable sources, or tolerated typecheck failure).
func runUnit(cfg *vetConfig, active []*framework.Analyzer, opts options) (*load.Package, []framework.Diagnostic, error) {
	// Dependency units outside the module carry no cbs facts; skip the
	// typecheck entirely and hand cmd/go an empty facts file to cache.
	// Test variants carry an ImportPath like "p [p.test]"; strip the suffix.
	base := strings.Fields(cfg.ImportPath)[0]
	if base != modulePrefix && !strings.HasPrefix(base, modulePrefix+"/") {
		return nil, nil, writeVetx(cfg.VetxOutput, nil)
	}

	// Without -tests, analyze only the non-test sources: the invariants
	// govern library code, and external test units ("pkg_test") have no
	// non-test files. With -tests the unit keeps its full file set.
	goFiles := cfg.GoFiles
	if !opts.tests {
		goFiles = nil
		for _, name := range cfg.GoFiles {
			if !strings.HasSuffix(name, "_test.go") {
				goFiles = append(goFiles, name)
			}
		}
	}
	if len(goFiles) == 0 {
		return nil, nil, writeVetx(cfg.VetxOutput, nil)
	}

	pkg, err := load.TypeCheckFiles(base, cfg.Dir, goFiles, cfg.PackageFile, cfg.ImportMap)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil, writeVetx(cfg.VetxOutput, nil)
		}
		return nil, nil, err
	}

	factCache := make(map[string]map[string]string)
	readFact := func(pkgPath, key string) (string, bool) {
		facts, ok := factCache[pkgPath]
		if !ok {
			file, have := cfg.PackageVetx[pkgPath]
			if !have {
				return "", false
			}
			blob, err := os.ReadFile(file)
			if err != nil || json.Unmarshal(blob, &facts) != nil {
				factCache[pkgPath] = nil
				return "", false
			}
			factCache[pkgPath] = facts
		}
		if facts == nil {
			return "", false
		}
		return facts[key], true
	}

	ownFacts := make(map[string]string)
	diags := runAnalyzers(pkg, active, opts, readFact, func(key, data string) { ownFacts[key] = data })

	if err := writeVetx(cfg.VetxOutput, ownFacts); err != nil {
		return nil, nil, err
	}
	return pkg, diags, nil
}

// writeVetx persists the facts blob; cmd/go opens this file after every
// successful run to cache it, so it must exist even when empty.
func writeVetx(path string, facts map[string]string) error {
	if path == "" {
		return nil
	}
	if facts == nil {
		facts = map[string]string{}
	}
	blob, err := json.Marshal(facts)
	if err == nil {
		err = os.WriteFile(path, blob, 0o666)
	}
	if err != nil {
		return fmt.Errorf("writing facts: %w", err)
	}
	return nil
}

// standalone analyzes package patterns directly (no vet.cfg), propagating
// facts in memory: `go list -deps` order guarantees dependencies first.
func standalone(patterns []string, active []*framework.Analyzer, opts options) int {
	var pkgs []*load.Package
	var err error
	if opts.tests {
		pkgs, err = load.PackagesTests(".", patterns)
	} else {
		pkgs, err = load.Packages(".", patterns)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cbscheck: %v\n", err)
		return 1
	}
	allFacts := make(map[string]map[string]string)
	exit := 0
	for _, pkg := range pkgs {
		facts := make(map[string]string)
		readFact := func(pkgPath, key string) (string, bool) {
			m, ok := allFacts[pkgPath]
			if !ok {
				return "", false
			}
			return m[key], true
		}
		diags := runAnalyzers(pkg, active, opts, readFact, func(key, data string) { facts[key] = data })
		allFacts[pkg.ImportPath] = facts
		if len(diags) == 0 {
			continue
		}
		if opts.asJSON {
			printJSON(pkg.ImportPath, pkg, diags)
		} else {
			printText(pkg, diags)
		}
		exit = 2
	}
	if opts.asJSON {
		exit = 0
	}
	return exit
}

// runAnalyzers runs the active analyzers over one package and returns the
// diagnostics in (file, offset) order, with allowlisted findings dropped.
func runAnalyzers(pkg *load.Package, active []*framework.Analyzer, opts options,
	readFact func(string, string) (string, bool), writeFact func(string, string)) []framework.Diagnostic {

	// The production view drops test files (standalone loads may include
	// in-package _test.go files even without -tests). Only TestAware
	// analyzers ever see the test-expanded view, and only under -tests.
	prodFiles := pkg.Files[:0:0]
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		if !strings.HasSuffix(name, "_test.go") {
			prodFiles = append(prodFiles, f)
		}
	}

	var diags []framework.Diagnostic
	for _, a := range active {
		files := prodFiles
		if opts.tests && a.TestAware {
			files = pkg.Files
		}
		pass := &framework.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d framework.Diagnostic) { diags = append(diags, d) },
			ReadFact:  readFact,
			WriteFact: writeFact,
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "cbscheck: %s: %v\n", a.Name, err)
		}
	}
	if opts.allowlist != nil {
		kept := diags[:0]
		for _, d := range diags {
			if !opts.allowlist.allows(d.Analyzer, pkg.Fset.Position(d.Pos).Filename, d.Message) {
				kept = append(kept, d)
			}
		}
		diags = kept
	}
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
	return diags
}

func printText(pkg *load.Package, diags []framework.Diagnostic) {
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", relPos(pos.String()), d.Message, d.Analyzer)
	}
}

// printJSON emits the go vet -json shape: {"importpath": {"analyzer": [...]}}.
// The object is assembled by hand so the byte stream is deterministic:
// analyzers in sorted-name order, diagnostics in (file, offset) order —
// map-based marshaling would leave the ordering to the encoder.
func printJSON(importPath string, pkg *load.Package, diags []framework.Diagnostic) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := make(map[string][]jsonDiag)
	var names []string
	for _, d := range diags {
		if _, seen := byAnalyzer[d.Analyzer]; !seen {
			names = append(names, d.Analyzer)
		}
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
			Posn:    pkg.Fset.Position(d.Pos).String(),
			Message: d.Message,
		})
	}
	sort.Strings(names)

	var b strings.Builder
	b.WriteString("{\n")
	fmt.Fprintf(&b, "\t%s: {\n", mustMarshal(importPath))
	for i, name := range names {
		// runAnalyzers sorted diags by (analyzer, file, offset), so each
		// analyzer's slice is already position-ordered.
		fmt.Fprintf(&b, "\t\t%s: ", mustMarshal(name))
		blob, err := json.MarshalIndent(byAnalyzer[name], "\t\t", "\t")
		if err != nil {
			fmt.Fprintf(os.Stderr, "cbscheck: %v\n", err)
			return
		}
		b.Write(blob)
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("\t}\n}")
	fmt.Println(b.String())
}

// mustMarshal renders a string as a JSON string literal.
func mustMarshal(s string) string {
	blob, err := json.Marshal(s)
	if err != nil {
		return `"?"`
	}
	return string(blob)
}

// relPos trims the working directory from a position for readable output.
func relPos(s string) string {
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, s); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
	}
	return s
}
