package main

import (
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"cbs/internal/analysis/chaossite"
	"cbs/internal/analysis/ctxflow"
	"cbs/internal/analysis/framework"
)

// listedUnit is the slice of `go list -json` output the test consumes to
// assemble vet.cfg-equivalent unit configs, the same way cmd/go would.
type listedUnit struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
}

// listUnits runs go list -export over the fixture tree and indexes the
// result by import path.
func listUnits(t *testing.T, pattern string) map[string]*listedUnit {
	t.Helper()
	cmd := exec.Command("go", "list", "-e", "-export", "-deps", "-json", pattern)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list: %v", err)
	}
	units := make(map[string]*listedUnit)
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var u listedUnit
		if err := dec.Decode(&u); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("go list output: %v", err)
		}
		q := u
		units[u.ImportPath] = &q
	}
	return units
}

// unitConfig builds the vet.cfg-shaped description of one fixture unit:
// export data for every listed package, the unit's own sources, and the
// given dependency vetx files.
func unitConfig(units map[string]*listedUnit, importPath string, vetx map[string]string, vetxOut string) *vetConfig {
	exports := make(map[string]string)
	importMap := make(map[string]string)
	for _, u := range units {
		if u.Export != "" {
			exports[u.ImportPath] = u.Export
		}
		for from, to := range u.ImportMap {
			importMap[from] = to
		}
	}
	u := units[importPath]
	return &vetConfig{
		ImportPath:  importPath,
		Dir:         u.Dir,
		GoFiles:     append([]string(nil), u.GoFiles...),
		ImportMap:   importMap,
		PackageFile: exports,
		PackageVetx: vetx,
		VetxOutput:  vetxOut,
	}
}

// TestUnitcheckFactRoundTrip drives runUnit the way cmd/go's vet drives
// the tool over two module packages: factdep's chaossite fact is written
// to a vetx file, handed to the dependent unit through PackageVetx, and
// surfaces there as a cross-package duplicate-site diagnostic. Without the
// vetx input the same unit analyzes clean — the analyzers degrade to
// local-only enforcement instead of guessing at missing facts.
func TestUnitcheckFactRoundTrip(t *testing.T) {
	const (
		depPath  = "cbs/cmd/cbscheck/testdata/src/factdep"
		userPath = "cbs/cmd/cbscheck/testdata/src/factuser"
	)
	units := listUnits(t, "./testdata/src/factuser")
	if units[depPath] == nil || units[userPath] == nil {
		t.Fatalf("fixture packages missing from go list output")
	}
	tmp := t.TempDir()
	active := []*framework.Analyzer{chaossite.Analyzer}
	opts := options{}

	// Analyze the dependency unit; its facts land in dep.vetx.
	depVetx := filepath.Join(tmp, "dep.vetx")
	pkg, diags, err := runUnit(unitConfig(units, depPath, nil, depVetx), active, opts)
	if err != nil {
		t.Fatalf("factdep unit: %v", err)
	}
	if pkg == nil {
		t.Fatalf("factdep unit was skipped")
	}
	if len(diags) != 0 {
		t.Fatalf("factdep unit: unexpected diagnostics: %v", diags)
	}

	// The vetx blob is the JSON fact map cmd/go caches; the chaossite table
	// must decode back to the registered site.
	blob, err := os.ReadFile(depVetx)
	if err != nil {
		t.Fatalf("reading vetx: %v", err)
	}
	var facts map[string]string
	if err := json.Unmarshal(blob, &facts); err != nil {
		t.Fatalf("vetx is not a fact map: %v", err)
	}
	table := framework.DecodeTable(facts[chaossite.FactKey])
	if _, ok := table["shared.unit"]; !ok {
		t.Fatalf("chaossites fact lost the registered site; table=%v", table)
	}

	// Dependent unit with the vetx plumbed: the collision surfaces.
	userVetx := filepath.Join(tmp, "user.vetx")
	cfg := unitConfig(units, userPath, map[string]string{depPath: depVetx}, userVetx)
	pkg, diags, err = runUnit(cfg, active, opts)
	if err != nil {
		t.Fatalf("factuser unit: %v", err)
	}
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, `"shared.unit" is already registered in `+depPath) {
			found = true
		}
	}
	if !found {
		t.Errorf("factuser unit with facts: want cross-package duplicate diagnostic, got %v", messages(diags))
	}

	// Same unit, no PackageVetx: graceful degradation, no spurious report.
	cfg = unitConfig(units, userPath, nil, filepath.Join(tmp, "user2.vetx"))
	pkg, diags, err = runUnit(cfg, active, opts)
	if err != nil {
		t.Fatalf("factuser unit (no facts): %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("factuser unit without facts: want no diagnostics, got %v", messages(diags))
	}
}

// TestDiagnosticOrderDeterministic pins the output contract of satellite
// tooling (-json consumers, the allowlist): diagnostics come back sorted
// by analyzer name then position, regardless of the order the analyzers
// ran or reported in. ctxflow is deliberately registered first here; its
// finding must still sort after chaossite's.
func TestDiagnosticOrderDeterministic(t *testing.T) {
	const (
		depPath  = "cbs/cmd/cbscheck/testdata/src/factdep"
		userPath = "cbs/cmd/cbscheck/testdata/src/factuser"
	)
	units := listUnits(t, "./testdata/src/factuser")
	tmp := t.TempDir()
	active := []*framework.Analyzer{ctxflow.Analyzer, chaossite.Analyzer}

	depVetx := filepath.Join(tmp, "dep.vetx")
	if _, _, err := runUnit(unitConfig(units, depPath, nil, depVetx), active, options{}); err != nil {
		t.Fatalf("factdep unit: %v", err)
	}
	cfg := unitConfig(units, userPath, map[string]string{depPath: depVetx}, filepath.Join(tmp, "user.vetx"))
	_, diags, err := runUnit(cfg, active, options{})
	if err != nil {
		t.Fatalf("factuser unit: %v", err)
	}
	if len(diags) < 2 {
		t.Fatalf("want at least a chaossite and a ctxflow finding, got %v", messages(diags))
	}
	if diags[0].Analyzer != "chaossite" || diags[len(diags)-1].Analyzer != "ctxflow" {
		t.Errorf("diagnostics not sorted by analyzer: %v", analyzerNames(diags))
	}
	if !sort.SliceIsSorted(diags, func(i, j int) bool {
		return diags[i].Analyzer < diags[j].Analyzer ||
			(diags[i].Analyzer == diags[j].Analyzer && diags[i].Pos < diags[j].Pos)
	}) {
		t.Errorf("diagnostics not in (analyzer, position) order: %v", messages(diags))
	}
}

// analyzerNames renders the analyzer column for failure output.
func analyzerNames(diags []framework.Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Analyzer)
	}
	return out
}

// TestUnitcheckSkipsForeignUnits pins the outside-the-module fast path: an
// empty facts file and no analysis.
func TestUnitcheckSkipsForeignUnits(t *testing.T) {
	vetx := filepath.Join(t.TempDir(), "fmt.vetx")
	cfg := &vetConfig{ImportPath: "fmt", VetxOutput: vetx}
	pkg, diags, err := runUnit(cfg, []*framework.Analyzer{chaossite.Analyzer}, options{})
	if err != nil {
		t.Fatalf("foreign unit: %v", err)
	}
	if pkg != nil || len(diags) != 0 {
		t.Fatalf("foreign unit was analyzed: pkg=%v diags=%v", pkg, diags)
	}
	blob, err := os.ReadFile(vetx)
	if err != nil || string(blob) != "{}" {
		t.Fatalf("foreign unit vetx: %q, %v (want empty fact map)", blob, err)
	}
}

// messages renders diagnostics for failure output.
func messages(diags []framework.Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Message)
	}
	return out
}
