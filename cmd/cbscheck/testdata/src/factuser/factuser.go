// Package factuser reuses factdep's site name. The chaossite analyzer only
// sees the collision when factdep's fact arrives through the driver — via
// a PackageVetx file in unitcheck mode — and stays silent when no facts
// are available (a bare vettool run), which is exactly what the unitcheck
// round-trip test asserts on both sides.
package factuser

import (
	"context"

	chaos "cbs/cmd/cbscheck/testdata/src/chaosfix"
	"cbs/cmd/cbscheck/testdata/src/factdep"
)

// Rearm reuses the site name factdep already published.
func Rearm(in *chaos.Injector, i int) bool {
	if factdep.Arm(in, i) {
		return true
	}
	//cbs:chaossite shared.unit
	return in.CheckpointFault(i + 1)
}

// Reroot forges a context root in library code — a ctxflow violation the
// output-ordering test uses as its second-analyzer finding.
func Reroot() context.Context {
	return context.Background()
}
