// Package chaos models the real internal/chaos injector for the unitcheck
// fact-plumbing fixtures.
package chaos

import "os"

// Config carries the per-fault-kind rates.
type Config struct {
	CheckpointFault float64
}

// Injector draws deterministic faults.
type Injector struct{ cfg Config }

// New builds an injector.
func New(cfg Config) *Injector { return &Injector{cfg: cfg} }

// FromEnv arms every rate from its CBS_CHAOS_* key.
func FromEnv() *Injector {
	cfg := Config{}
	if os.Getenv("CBS_CHAOS_CKPT") != "" {
		cfg.CheckpointFault = 1
	}
	return New(cfg)
}

// CheckpointFault draws a journal-append fault.
func (in *Injector) CheckpointFault(i int) bool {
	return in != nil && in.cfg.CheckpointFault > 0 && i >= 0
}
