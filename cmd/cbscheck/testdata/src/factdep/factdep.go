// Package factdep registers one chaos site; its published "chaossites"
// fact is what the unitcheck round-trip test pushes through a vetx file.
package factdep

import chaos "cbs/cmd/cbscheck/testdata/src/chaosfix"

// Arm hits this package's registered fault site.
func Arm(in *chaos.Injector, i int) bool {
	//cbs:chaossite shared.unit
	return in.CheckpointFault(i)
}
