// negfbench measures what the CBS→NEGF transport pipeline costs on the
// tight-binding backend: the same in-band energy grid runs once as a plain
// CBS sweep (contour solves only) and once through the full transmission
// pipeline (solves + lead self-energies + device Green function + Caroli
// trace), and the wall-clock numbers are written as the tracked
// BENCH_PR10.json snapshot (schema cbs-negfbench/v1, continuing the
// BENCH_PR6/PR8/PR9 trajectory).
//
//	go run ./cmd/negfbench -json BENCH_PR10.json
//	go run ./cmd/negfbench -verify BENCH_PR10.json
//
// The snapshot only counts if the physics held: every in-band point must
// transmit its quantized single open channel (|T-1| <= 1e-6), so a
// recorded timing can never come from a silently broken pipeline — the
// same role GoldenMatch plays in the fleet benchmark.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"cbs"
)

const benchSchema = "cbs-negfbench/v1"

// benchResult is one pipeline configuration's timing.
type benchResult struct {
	// Mode is "solve" (plain CBS sweep, contour solves only) or
	// "transport" (full NEGF pipeline on the same energies).
	Mode        string  `json:"mode"`
	WallMs      float64 `json:"wall_ms"`
	MsPerEnergy float64 `json:"ms_per_energy"`
}

// benchFile is the snapshot document.
type benchFile struct {
	Schema    string        `json:"schema"`
	GitSHA    string        `json:"git_sha"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	GoVersion string        `json:"go_version"`
	System    string        `json:"system"` // operator descriptor, e.g. tb-chain|sites=4|...
	Sites     int           `json:"sites"`
	Cells     int           `json:"cells"`
	NE        int           `json:"ne"`
	Nint      int           `json:"nint"`
	Nmm       int           `json:"nmm"`
	Nrh       int           `json:"nrh"`
	Results   []benchResult `json:"results"`
	// NEGFOverhead is transport wall over solve wall: how much the
	// self-energy/Green-function stage adds on top of the contour solves.
	NEGFOverhead float64 `json:"negf_overhead"`
	// Quantized records that every in-band point transmitted its integer
	// open-channel count — a snapshot without it timed a broken pipeline.
	Quantized bool `json:"quantized"`
}

func main() {
	jsonPath := flag.String("json", "", "write the benchmark snapshot to this file")
	verify := flag.String("verify", "", "parse an existing snapshot against the cbs-negfbench/v1 schema and exit")
	sites := flag.Int("sites", 4, "tight-binding chain supercell sites")
	cells := flag.Int("cells", 4, "device length in supercells")
	ne := flag.Int("ne", 64, "energies in the sweep")
	flag.Parse()

	if *verify != "" {
		if err := verifyBenchFile(*verify); err != nil {
			log.Fatalf("%s: %v", *verify, err)
		}
		fmt.Printf("%s: valid %s snapshot\n", *verify, benchSchema)
		return
	}

	ctx := context.Background()
	model, err := cbs.NewTBChain(cbs.TBChainConfig{
		Sites: *sites, Onsite: 0, Hopping: -1, A: float64(*sites),
	})
	if err != nil {
		log.Fatal(err)
	}
	opts := cbs.DefaultOptions()
	opts.Nrh = 2
	opts.Nmm = 2

	// Uniform in-band grid, clear of the ±2|t| band edges so every energy
	// carries exactly one propagating channel (E=0's folding degeneracy
	// included — the velocity classifier resolves it).
	es := make([]float64, *ne)
	for i := range es {
		f := float64(i) / float64(max(1, *ne-1))
		es[i] = -1.8 + 3.6*f
	}

	file := benchFile{
		Schema: benchSchema, GitSHA: gitSHA(),
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, GoVersion: runtime.Version(),
		System: model.OperatorDesc(), Sites: *sites, Cells: *cells, NE: *ne,
		Nint: opts.Nint, Nmm: opts.Nmm, Nrh: opts.Nrh,
		Quantized: true,
	}

	fmt.Fprintf(os.Stderr, "negfbench: %s, %d energies, %d-cell device\n", model.OperatorDesc(), *ne, *cells)
	t0 := time.Now()
	rep, err := model.SweepCBS(ctx, es, opts, cbs.SweepConfig{})
	solveWall := time.Since(t0)
	if err != nil {
		log.Fatalf("CBS sweep: %v", err)
	}
	if rep.OK != len(es) {
		log.Fatalf("CBS sweep: OK=%d of %d", rep.OK, len(es))
	}
	file.Results = append(file.Results, result("solve", solveWall, *ne))
	fmt.Fprintf(os.Stderr, "negfbench: solve %.0f ms\n", solveWall.Seconds()*1e3)

	t0 = time.Now()
	curve, err := model.TransportCBS(ctx, cbs.TransportSpec{
		Energies: es,
		Device:   cbs.TransportDevice{Cells: *cells},
	}, opts, cbs.SweepConfig{})
	transportWall := time.Since(t0)
	if err != nil {
		log.Fatalf("transport sweep: %v", err)
	}
	for _, p := range curve.Points {
		if p.Status != cbs.TransportOK || p.NOpen != 1 || abs(p.T-1) > 1e-6 {
			fmt.Fprintf(os.Stderr, "negfbench: E=%g T=%g n_open=%d status=%v\n", p.E, p.T, p.NOpen, p.Status)
			file.Quantized = false
		}
	}
	file.Results = append(file.Results, result("transport", transportWall, *ne))
	file.NEGFOverhead = transportWall.Seconds() / solveWall.Seconds()
	fmt.Fprintf(os.Stderr, "negfbench: transport %.0f ms (%.2fx solve), quantized: %v\n",
		transportWall.Seconds()*1e3, file.NEGFOverhead, file.Quantized)
	if !file.Quantized {
		log.Fatal("negfbench: transmission lost quantization — refusing to record a broken pipeline")
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "negfbench: snapshot written to %s\n", *jsonPath)
	}
}

func result(mode string, wall time.Duration, ne int) benchResult {
	ms := wall.Seconds() * 1e3
	return benchResult{Mode: mode, WallMs: ms, MsPerEnergy: ms / float64(ne)}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// verifyBenchFile parses path against the cbs-negfbench/v1 schema — the
// CI tripwire for the committed BENCH_PR10.json.
func verifyBenchFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f benchFile
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	if f.Schema != benchSchema {
		return fmt.Errorf("schema %q, want %q", f.Schema, benchSchema)
	}
	if f.GOARCH == "" || f.GoVersion == "" || f.GitSHA == "" {
		return fmt.Errorf("missing provenance fields (goarch/go_version/git_sha)")
	}
	if f.NE <= 0 || f.Sites <= 0 || f.Cells <= 0 {
		return fmt.Errorf("non-positive problem shape ne=%d sites=%d cells=%d", f.NE, f.Sites, f.Cells)
	}
	if !strings.HasPrefix(f.System, "tb-") {
		return fmt.Errorf("system %q is not a tight-binding descriptor", f.System)
	}
	want := map[string]bool{"solve": false, "transport": false}
	for _, r := range f.Results {
		if _, ok := want[r.Mode]; !ok {
			return fmt.Errorf("unexpected result mode %q", r.Mode)
		}
		if r.WallMs <= 0 || r.MsPerEnergy <= 0 {
			return fmt.Errorf("result %q has non-positive timing", r.Mode)
		}
		want[r.Mode] = true
	}
	for mode, seen := range want {
		if !seen {
			return fmt.Errorf("missing result %q", mode)
		}
	}
	if f.NEGFOverhead < 1 {
		return fmt.Errorf("negf_overhead %.3f < 1: transport cannot be cheaper than its own solves", f.NEGFOverhead)
	}
	if !f.Quantized {
		return fmt.Errorf("snapshot recorded a non-quantized pipeline")
	}
	return nil
}
