// serialperf regenerates the paper's serial performance comparison:
//
//	Fig. 4(a)  runtime, OBM baseline vs QEP/Sakurai-Sugiura,
//	Fig. 4(b)  memory usage of the two methods,
//	Table 1    cost breakdown of the proposed method,
//	Fig. 5     BiCG residual histories at every quadrature point (-conv).
//
// The paper's systems (Al(100) at 20^3 and a (6,6) CNT at 72x72x12) are run
// at configurable reduced grids; the comparison targets the *shape* (who
// wins, how the gap grows with N), not the absolute Fortran/MKL numbers
// (see DESIGN.md).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"cbs"
	"cbs/internal/units"
)

type system struct {
	name  string
	model *cbs.Model
	ef    float64
}

func main() {
	alN := flag.Int("al-n", 10, "grid points per direction for Al(100) (paper: 20)")
	cntNxy := flag.Int("cnt-nxy", 14, "transverse grid for the (6,6) CNT (paper: 72)")
	cntNz := flag.Int("cnt-nz", 8, "axial grid for the (6,6) CNT (paper: 12)")
	conv := flag.String("conv", "", "write Fig. 5 residual histories to this TSV file")
	skipOBM := flag.Bool("skip-obm", false, "skip the baseline (for quick checks)")
	mode := flag.String("mode", "soa", "kernel mode for the QEP/SS runs: aos | soa | mixed")
	benchJSON := flag.String("bench-json", "", "run the {aos,soa,mixed} benchmark suite and write a cbs-bench/v1 snapshot to this file")
	benchAlN := flag.Int("bench-al-n", 8, "Al(100) grid points per direction for -bench-json")
	assertSpeedup := flag.Float64("assert-speedup", 0, "with -bench-json: fail unless stencil SoA speedup vs in-run AoS is at least this (CI tripwire)")
	benchVerify := flag.String("bench-verify", "", "parse an existing BENCH_*.json against the cbs-bench/v1 schema and exit")
	flag.Parse()

	if *benchVerify != "" {
		if err := verifyBenchFile(*benchVerify); err != nil {
			log.Fatalf("%s: %v", *benchVerify, err)
		}
		fmt.Printf("%s: valid %s snapshot\n", *benchVerify, benchSchema)
		return
	}
	if *benchJSON != "" {
		runBench(*benchJSON, *benchAlN, *assertSpeedup)
		return
	}

	kernels, precision, err := modeOpts(*mode)
	if err != nil {
		log.Fatal(err)
	}

	systems := []system{
		build("Al(100)", mustAl(), *alN, *alN, *alN),
		build("(6,6) CNT", mustCNT(6, 6), *cntNxy, *cntNxy, *cntNz),
	}

	for _, s := range systems {
		fmt.Printf("==================== %s (N = %d, kernels %s) ====================\n", s.name, s.model.N(), *mode)
		opts := cbs.DefaultOptions()
		opts.Nrh = 16
		opts.Kernels = kernels
		opts.Precision = precision
		opts.TrackHistories = *conv != ""

		// ---- QEP/SS: Table 1 breakdown + Fig. 4a runtime ----------------
		tBuild := time.Now()
		// (The Hamiltonian is already built; rebuild to time the "read
		// matrix data" analog.)
		res, err := s.model.SolveCBS(s.ef, opts)
		if err != nil {
			log.Fatal(err)
		}
		ssTotal := time.Since(tBuild)
		fmt.Printf("Table 1 (QEP/SS breakdown):\n")
		fmt.Printf("  read matrix data        %12v\n", res.Timings.Setup.Round(time.Millisecond))
		fmt.Printf("  solve linear equations  %12v\n", res.Timings.SolveLinear.Round(time.Millisecond))
		fmt.Printf("  extract eigenpairs      %12v\n", res.Timings.Extract.Round(time.Millisecond))
		fmt.Printf("  states found: %d (rank %d)\n", len(res.Pairs), res.Rank)

		// ---- OBM baseline ------------------------------------------------
		var obmTime time.Duration
		if !*skipOBM {
			t0 := time.Now()
			ob, err := s.model.SolveOBM(s.ef, cbs.DefaultOBMOptions())
			if err != nil {
				log.Fatal(err)
			}
			obmTime = time.Since(t0)
			fmt.Printf("OBM breakdown:\n")
			fmt.Printf("  matrix inversion        %12v\n", ob.Timings.Inversion.Round(time.Millisecond))
			fmt.Printf("  solve eigenvalue prob.  %12v\n", ob.Timings.Eigen.Round(time.Millisecond))
			fmt.Printf("  states found: %d\n", len(ob.Pairs))
		}

		// ---- Fig. 4a / 4b summary ----------------------------------------
		ssMem := s.model.CBSMemoryBytes(opts)
		obmMem := s.model.OBMMemoryBytes()
		fmt.Printf("Fig. 4(a) runtime:   OBM %v   QEP/SS %v", obmTime.Round(time.Millisecond), ssTotal.Round(time.Millisecond))
		if obmTime > 0 {
			fmt.Printf("   speedup %.1fx", float64(obmTime)/float64(ssTotal))
		}
		fmt.Println()
		fmt.Printf("Fig. 4(b) memory:    OBM %s   QEP/SS %s   ratio %.0fx\n\n",
			human(obmMem), human(ssMem), float64(obmMem)/float64(ssMem))

		// ---- Fig. 5 histories ---------------------------------------------
		if *conv != "" {
			writeHistories(*conv+"."+sanitize(s.name)+".tsv", res)
		}
	}
}

func build(name string, st *cbs.Structure, nx, ny, nz int) system {
	model, err := cbs.NewModel(st, cbs.GridConfig{Nx: nx, Ny: ny, Nz: nz, Nf: 4})
	if err != nil {
		log.Fatal(err)
	}
	ef, err := model.FermiLevel(3)
	if err != nil {
		log.Fatal(err)
	}
	return system{name: name, model: model, ef: ef}
}

func mustAl() *cbs.Structure {
	st, err := cbs.AlBulk100(1)
	if err != nil {
		log.Fatal(err)
	}
	return st
}

func mustCNT(n, m int) *cbs.Structure {
	st, err := cbs.CNT(n, m, units.AngstromToBohr(3.5))
	if err != nil {
		log.Fatal(err)
	}
	return st
}

func writeHistories(path string, res *cbs.Result) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	fmt.Fprintf(f, "# Fig. 5: BiCG relative residual vs iteration at each quadrature point z_j\n")
	fmt.Fprintf(f, "# columns: iteration, then one column per quadrature point\n")
	maxLen := 0
	for _, p := range res.Points {
		if len(p.History) > maxLen {
			maxLen = len(p.History)
		}
	}
	for it := 0; it < maxLen; it++ {
		fmt.Fprintf(f, "%d", it)
		for _, p := range res.Points {
			if it < len(p.History) {
				fmt.Fprintf(f, "\t%.3e", p.History[it])
			} else {
				fmt.Fprintf(f, "\t")
			}
		}
		fmt.Fprintln(f)
	}
	fmt.Printf("Fig. 5 histories written to %s\n", path)
}

func human(b int64) string {
	switch {
	case b > 1<<30:
		return fmt.Sprintf("%.2f GB", float64(b)/(1<<30))
	case b > 1<<20:
		return fmt.Sprintf("%.2f MB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%.1f KB", float64(b)/(1<<10))
	}
}

func sanitize(s string) string {
	out := []rune{}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
