// Bench mode: the tracked perf trajectory behind BENCH_*.json.
//
// serialperf -bench-json FILE runs the Fig. 4(a)-style benchmark across the
// three kernel modes {aos, soa, mixed} plus the blocked-stencil
// microbenchmark that isolates the layout change, and writes a
// schema-versioned JSON snapshot (ns/op, allocs/op, in-run speedups, git
// SHA, GOARCH) to FILE. The in-run AoS column doubles as the seed baseline:
// before this trajectory started, the hot path *was* the AoS complex128
// kernels, so "speedup vs seed" and "speedup vs in-run aos" are the same
// measurement taken on the same machine in the same process.
//
// serialperf -bench-verify FILE parses an existing snapshot against the
// schema (the CI regression tripwire for the committed BENCH_*.json).
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math"
	"math/cmplx"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"

	"cbs"
	"cbs/internal/soa"
)

// benchSchema versions the snapshot layout. Bump only with a reader-visible
// change; the verify path rejects files whose schema string differs.
const benchSchema = "cbs-bench/v1"

// mixedLambdaTol is the documented eigenvalue tolerance of the mixed mode:
// nearly-degenerate (lambda, 1/conj lambda) pairs at |lambda| ~ 1 split
// under an O(1e-9) backward error like sqrt(eps_backward) ~ 3e-5, so the
// budget is 1e-4 (DESIGN.md §11).
const mixedLambdaTol = 1e-4

type benchResult struct {
	Name        string  `json:"name"`
	Mode        string  `json:"mode"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

type benchFile struct {
	Schema         string             `json:"schema"`
	GitSHA         string             `json:"git_sha"`
	GOOS           string             `json:"goos"`
	GOARCH         string             `json:"goarch"`
	GoVersion      string             `json:"go_version"`
	AlN            int                `json:"al_n"`
	N              int                `json:"n"`
	NB             int                `json:"nb"`
	Results        []benchResult      `json:"results"`
	Speedups       map[string]float64 `json:"speedups"`
	MixedLambdaDev float64            `json:"mixed_lambda_dev"`
	MixedLambdaTol float64            `json:"mixed_lambda_tol"`
	Notes          string             `json:"notes"`
}

// benchModes are the trajectory columns, in baseline-first order.
var benchModes = []string{"aos", "soa", "mixed"}

// modeOpts maps a kernel-mode name to the (Kernels, Precision) option pair.
func modeOpts(mode string) (kernels, precision string, err error) {
	switch mode {
	case "aos":
		return "aos", "complex128", nil
	case "soa":
		return "soa", "complex128", nil
	case "mixed":
		return "soa", "mixed", nil
	default:
		return "", "", fmt.Errorf("unknown kernel mode %q (want aos, soa or mixed)", mode)
	}
}

// runBench produces one snapshot of the perf trajectory and writes it to
// path. assertSpeedup > 0 additionally gates the exit status on the stencil
// SoA-vs-AoS speedup (the CI smoke tripwire); the mixed eigenvalue check
// always gates.
func runBench(path string, alN int, assertSpeedup float64) {
	model, ef := benchModel(alN)
	op := model.Op
	n := op.N()
	const nb = 16 // Nrh right-hand sides per block, as in the Fig. 4a runs

	fmt.Printf("bench: Al(100) al-n=%d (N=%d), nb=%d, %s/%s, %s\n",
		alN, n, nb, runtime.GOOS, runtime.GOARCH, runtime.Version())

	out := benchFile{
		Schema:         benchSchema,
		GitSHA:         gitSHA(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		GoVersion:      runtime.Version(),
		AlN:            alN,
		N:              n,
		NB:             nb,
		Speedups:       map[string]float64{},
		MixedLambdaTol: mixedLambdaTol,
		Notes: "aos column is the seed baseline (pre-SoA hot path); " +
			"speedups are vs the in-run aos measurement on this machine; " +
			"stencil = blocked ApplyH0Block microbenchmark, fig4a = full contour solve",
	}

	// ---- blocked stencil microbenchmark --------------------------------
	stencil := map[string]testing.BenchmarkResult{}
	for _, mode := range benchModes {
		r := benchStencil(model, nb, mode)
		stencil[mode] = r
		out.Results = append(out.Results, toResult("stencil", mode, r))
		fmt.Printf("  stencil/%-5s  %12.0f ns/op  %3d allocs/op\n", mode, nsPerOp(r), r.AllocsPerOp())
	}

	// ---- Fig. 4a full contour solve ------------------------------------
	for _, mode := range benchModes {
		r := benchFig4a(model, ef, mode)
		out.Results = append(out.Results, toResult("fig4a", mode, r))
		fmt.Printf("  fig4a/%-7s %12.0f ns/op  (%d runs)\n", mode, nsPerOp(r), r.N)
		if base := findResult(out.Results, "fig4a", "aos"); base != nil && nsPerOp(r) > 0 {
			out.Speedups["fig4a_"+mode+"_vs_aos"] = base.NsPerOp / nsPerOp(r)
		}
	}
	for _, mode := range []string{"soa", "mixed"} {
		if nsPerOp(stencil[mode]) > 0 {
			out.Speedups["stencil_"+mode+"_vs_aos"] = nsPerOp(stencil["aos"]) / nsPerOp(stencil[mode])
		}
	}

	// ---- mixed-precision accuracy on the same model --------------------
	out.MixedLambdaDev = mixedDeviation(model, ef)
	fmt.Printf("  mixed lambda deviation %.2e (tol %.0e)\n", out.MixedLambdaDev, mixedLambdaTol)

	writeBenchFile(path, &out)
	fmt.Printf("bench: wrote %s\n", path)
	for k, v := range out.Speedups {
		fmt.Printf("  %-24s %.2fx\n", k, v)
	}

	if out.MixedLambdaDev > mixedLambdaTol {
		log.Fatalf("bench: mixed eigenvalue deviation %.2e exceeds tolerance %.0e",
			out.MixedLambdaDev, mixedLambdaTol)
	}
	if assertSpeedup > 0 {
		if s := out.Speedups["stencil_soa_vs_aos"]; s < assertSpeedup {
			log.Fatalf("bench: stencil SoA speedup %.2fx below required %.2fx", s, assertSpeedup)
		}
	}
}

// benchStencil times the blocked H0 apply in one kernel mode. The mixed
// column measures the float32 SoA apply — the inner-iteration cost of the
// mixed solver, where the stencil actually runs in that mode.
func benchStencil(model *cbs.Model, nb int, mode string) testing.BenchmarkResult {
	op := model.Op
	n := op.N()
	v := make([]complex128, n*nb)
	outv := make([]complex128, n*nb)
	for i := range v {
		// Deterministic non-trivial fill; no RNG so runs are reproducible.
		v[i] = complex(math.Sin(float64(i)+0.5), math.Cos(2.1*float64(i)))
	}
	switch mode {
	case "aos":
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				op.ApplyH0Block(v, outv, nb)
			}
		})
	case "soa":
		t64 := op.SoA64()
		vb := soa.NewBlock[float64](n, nb)
		ob := soa.NewBlock[float64](n, nb)
		soa.Pack(vb, v)
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				t64.ApplyH0Block(vb, ob)
			}
		})
	case "mixed":
		t32 := op.SoA32()
		vb := soa.NewBlock[float32](n, nb)
		ob := soa.NewBlock[float32](n, nb)
		soa.Pack(vb, v)
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				t32.ApplyH0Block(vb, ob)
			}
		})
	}
	panic("unknown stencil mode " + mode)
}

// benchFig4a times the full contour solve (the Fig. 4a QEP/SS runtime) in
// one kernel mode.
func benchFig4a(model *cbs.Model, ef float64, mode string) testing.BenchmarkResult {
	kernels, precision, err := modeOpts(mode)
	if err != nil {
		log.Fatal(err)
	}
	opts := cbs.DefaultOptions()
	opts.Nrh = 16
	opts.Kernels = kernels
	opts.Precision = precision
	var solveErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := model.SolveCBS(ef, opts); err != nil {
				solveErr = err
				return
			}
		}
	})
	if solveErr != nil {
		log.Fatalf("bench: fig4a/%s solve failed: %v", mode, solveErr)
	}
	return r
}

// mixedDeviation solves once in soa/complex128 and once in mixed mode and
// returns the largest distance from a mixed eigenvalue to its nearest
// reference eigenvalue.
func mixedDeviation(model *cbs.Model, ef float64) float64 {
	ref := mustSolve(model, ef, "soa")
	mix := mustSolve(model, ef, "mixed")
	if len(mix.Pairs) != len(ref.Pairs) {
		log.Fatalf("bench: mixed mode found %d eigenpairs, reference found %d",
			len(mix.Pairs), len(ref.Pairs))
	}
	dev := 0.0
	for _, p := range mix.Pairs {
		best := math.Inf(1)
		for _, q := range ref.Pairs {
			if d := cmplx.Abs(p.Lambda - q.Lambda); d < best {
				best = d
			}
		}
		if best > dev {
			dev = best
		}
	}
	return dev
}

func mustSolve(model *cbs.Model, ef float64, mode string) *cbs.Result {
	kernels, precision, err := modeOpts(mode)
	if err != nil {
		log.Fatal(err)
	}
	opts := cbs.DefaultOptions()
	opts.Nrh = 16
	opts.Kernels = kernels
	opts.Precision = precision
	res, err := model.SolveCBS(ef, opts)
	if err != nil {
		log.Fatalf("bench: %s solve failed: %v", mode, err)
	}
	return res
}

func benchModel(alN int) (*cbs.Model, float64) {
	s := build("Al(100)", mustAl(), alN, alN, alN)
	return s.model, s.ef
}

func toResult(name, mode string, r testing.BenchmarkResult) benchResult {
	return benchResult{
		Name:        name,
		Mode:        mode,
		NsPerOp:     nsPerOp(r),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

func findResult(rs []benchResult, name, mode string) *benchResult {
	for i := range rs {
		if rs[i].Name == name && rs[i].Mode == mode {
			return &rs[i]
		}
	}
	return nil
}

// nsPerOp reports fractional ns/op (BenchmarkResult.NsPerOp truncates to
// integer nanoseconds, losing precision on fast kernels).
func nsPerOp(r testing.BenchmarkResult) float64 {
	if r.N <= 0 {
		return 0
	}
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func writeBenchFile(path string, f *benchFile) {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	// Round-trip through the verifier so a malformed snapshot can never be
	// written silently.
	if err := verifyBenchFile(path); err != nil {
		log.Fatalf("bench: self-verification of %s failed: %v", path, err)
	}
}

// verifyBenchFile parses path against the cbs-bench/v1 schema.
func verifyBenchFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f benchFile
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	if f.Schema != benchSchema {
		return fmt.Errorf("schema %q, want %q", f.Schema, benchSchema)
	}
	if f.GOARCH == "" || f.GoVersion == "" || f.GitSHA == "" {
		return fmt.Errorf("missing provenance fields (goarch/go_version/git_sha)")
	}
	if f.N <= 0 || f.NB <= 0 {
		return fmt.Errorf("non-positive problem shape n=%d nb=%d", f.N, f.NB)
	}
	want := map[string]bool{}
	for _, name := range []string{"stencil", "fig4a"} {
		for _, mode := range benchModes {
			want[name+"/"+mode] = false
		}
	}
	for _, r := range f.Results {
		key := r.Name + "/" + r.Mode
		if _, ok := want[key]; !ok {
			return fmt.Errorf("unexpected result %q", key)
		}
		if r.NsPerOp <= 0 || r.Iterations <= 0 {
			return fmt.Errorf("result %q has non-positive timing", key)
		}
		want[key] = true
	}
	for key, seen := range want {
		if !seen {
			return fmt.Errorf("missing result %q", key)
		}
	}
	for _, k := range []string{"stencil_soa_vs_aos", "stencil_mixed_vs_aos", "fig4a_soa_vs_aos", "fig4a_mixed_vs_aos"} {
		if f.Speedups[k] <= 0 {
			return fmt.Errorf("missing or non-positive speedup %q", k)
		}
	}
	if f.MixedLambdaTol <= 0 || f.MixedLambdaDev < 0 {
		return fmt.Errorf("bad mixed-precision accuracy fields")
	}
	return nil
}
