// bands regenerates the band-structure figures:
//
//	-fig6   CBS of Al(100) and the (6,6) CNT overlaid on the conventional
//	        band structure (TSV data files, paper Fig. 6),
//	-fig11  CBS of the isolated (8,0) CNT, the 7-tube bundle and the
//	        crystalline bundle over an energy window (paper Fig. 11).
//
// Each output row holds E (eV, relative to EF), Re(k)*a/pi and Im(k)*a/pi,
// so the standard "complex band structure" plot (imaginary branch to the
// left, real branch to the right) can be drawn directly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"cbs"
	"cbs/internal/units"
)

func main() {
	fig6 := flag.Bool("fig6", false, "emit Fig. 6 data (Al(100) and (6,6) CNT)")
	fig11 := flag.Bool("fig11", false, "emit Fig. 11 data (CNT bundles)")
	nE := flag.Int("ne", 9, "energies in the scan window (paper: 200)")
	window := flag.Float64("window", 1.0, "energy half-window around EF (eV)")
	out := flag.String("out", "bands_data", "output directory")
	nxy := flag.Int("nxy", 14, "transverse grid points for tube systems")
	alN := flag.Int("al-n", 8, "grid points per direction for Al")
	flag.Parse()
	if !*fig6 && !*fig11 {
		*fig6 = true
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	vac := units.AngstromToBohr(3.5)

	if *fig6 {
		al, err := cbs.AlBulk100(1)
		if err != nil {
			log.Fatal(err)
		}
		emit(*out+"/fig6_al100", al, cbs.GridConfig{Nx: *alN, Ny: *alN, Nz: *alN, Nf: 4}, *nE, *window)
		cnt, err := cbs.CNT(6, 6, vac)
		if err != nil {
			log.Fatal(err)
		}
		emit(*out+"/fig6_cnt66", cnt, cbs.GridConfig{Nx: *nxy, Ny: *nxy, Nz: 8, Nf: 4}, *nE, *window)
	}
	if *fig11 {
		tube, err := cbs.CNT(8, 0, vac)
		if err != nil {
			log.Fatal(err)
		}
		emit(*out+"/fig11_cnt80", tube, cbs.GridConfig{Nx: *nxy, Ny: *nxy, Nz: 8, Nf: 4}, *nE, *window)
		b7, err := cbs.Bundle7(tube, vac)
		if err != nil {
			log.Fatal(err)
		}
		emit(*out+"/fig11_bundle7", b7, cbs.GridConfig{Nx: 2 * *nxy, Ny: 2 * *nxy, Nz: 8, Nf: 4}, *nE, *window)
		cr, err := cbs.CrystallineBundle(tube)
		if err != nil {
			log.Fatal(err)
		}
		emit(*out+"/fig11_crystalline", cr, cbs.GridConfig{Nx: *nxy, Ny: (*nxy * 7) / 4, Nz: 8, Nf: 4}, *nE, *window)
	}
}

func emit(prefix string, st *cbs.Structure, cfg cbs.GridConfig, nE int, window float64) {
	fmt.Printf("%s: %d atoms ...\n", st.Name, st.NumAtoms())
	model, err := cbs.NewModel(st, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ef, err := model.FermiLevel(3)
	if err != nil {
		log.Fatal(err)
	}
	a := model.CellLength()

	// Conventional bands (the red curves); cap the band count on large
	// cells so the sparse eigensolver path applies.
	nb := 0
	if model.N() > 1200 {
		nb = 40
	}
	ks, bandsE, err := model.Bands(9, nb)
	if err != nil {
		log.Fatal(err)
	}
	fb, err := os.Create(prefix + "_bands.tsv")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(fb, "# conventional band structure: k*a/pi, then E-EF (eV) per band\n")
	for i, k := range ks {
		fmt.Fprintf(fb, "%.6f", k*a/math.Pi)
		for _, e := range bandsE[i] {
			fmt.Fprintf(fb, "\t%.6f", units.HartreeToEV(e-ef))
		}
		fmt.Fprintln(fb)
	}
	fb.Close()

	// CBS scan (the black dots) on the durable sweep engine: a pathological
	// energy is retried with parameter escalation and, if it still fails,
	// marked failed on stderr — the figure keeps every energy that solved
	// instead of dying with an empty data file.
	opts := cbs.DefaultOptions()
	opts.Nint = 16
	opts.Nmm = 6
	opts.Nrh = 8
	opts.Parallel = cbs.Parallel{Top: 2, Mid: 4}
	var es []float64
	for i := 0; i < nE; i++ {
		es = append(es, ef+units.EVToHartree(-window+2*window*float64(i)/math.Max(1, float64(nE-1))))
	}
	report, err := model.SweepCBS(context.Background(), es, opts, cbs.SweepConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fc, err := os.Create(prefix + "_cbs.tsv")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(fc, "# complex band structure: E-EF (eV), Re(k)*a/pi, Im(k)*a/pi, |lambda|, residual\n")
	for _, er := range report.Results {
		if er.Status == cbs.SweepFailed {
			fmt.Fprintf(os.Stderr, "  E-EF = %+.3f eV FAILED: %v\n", units.HartreeToEV(er.Energy-ef), er.Err)
			continue
		}
		for _, p := range er.Result.Pairs {
			lam := p.Lambda
			fmt.Fprintf(fc, "%.6f\t%.6f\t%.6f\t%.6f\t%.2e\n",
				units.HartreeToEV(er.Energy-ef),
				real(p.K)*a/math.Pi, imag(p.K)*a/math.Pi,
				mag(lam), p.Residual)
		}
	}
	fc.Close()
	if report.Failed > 0 {
		fmt.Printf("  wrote %s_bands.tsv and %s_cbs.tsv with %d of %d energies FAILED (EF = %.4f Ha)\n",
			prefix, prefix, report.Failed, len(es), ef)
	} else {
		fmt.Printf("  wrote %s_bands.tsv and %s_cbs.tsv (EF = %.4f Ha)\n", prefix, prefix, ef)
	}
}

func mag(z complex128) float64 { return math.Hypot(real(z), imag(z)) }
