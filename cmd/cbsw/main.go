// cbsw is the fleet worker: it builds the same model as a coordinating
// cbs process (same -system and grid flags), dials the coordinator, and
// solves the energies the rendezvous hash assigns it until the sweep
// finishes. Every assignment is verified against the coordinator's solve
// fingerprint before any arithmetic runs, so a worker built with the
// wrong flags refuses work instead of contributing wrong physics.
//
// A worker that loses the coordinator exits with the typed link error;
// restarting it (same -name) re-registers and wins back its rendezvous
// share. Killing a worker mid-solve is safe: the coordinator re-dispatches
// its outstanding energies to the survivors.
//
// Example (against `cbs -scan -fleet-listen :9740`):
//
//	cbsw -coordinator host:9740 -name w1 -system al
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"cbs"
	"cbs/internal/chaos"
	"cbs/internal/comm"
	"cbs/internal/units"
)

func main() {
	coordinator := flag.String("coordinator", "", "coordinator address (host:port) — required")
	name := flag.String("name", "", "stable worker name for the rendezvous hash (default: hostname-pid)")

	sys := flag.String("system", "al", "system: al | cnt | bundle7 | crystalline | bncnt (must match the coordinator)")
	n := flag.Int("n", 8, "CNT chiral index n")
	m := flag.Int("m", 0, "CNT chiral index m")
	cells := flag.Int("cells", 1, "cells stacked along z (supercell)")
	bnPairs := flag.Int("bn-pairs", 0, "BN dopant pairs (bncnt)")
	seed := flag.Int64("seed", 2017, "doping seed")
	nxy := flag.Int("nxy", 16, "transverse grid points")
	nz := flag.Int("nz", 10, "axial grid points per cell")
	nf := flag.Int("nf", 4, "finite-difference half-width")

	retries := flag.Int("retries", 3, "failed solve attempts per assigned energy")
	top := flag.Int("top", 1, "top-layer workers (right-hand sides)")
	mid := flag.Int("mid", 1, "middle-layer workers (quadrature points)")
	ndm := flag.Int("ndm", 1, "bottom-layer domains")

	ioTimeout := flag.Duration("io-timeout", 0, "per-read link deadline (0 = transport default)")
	retryBudget := flag.Int("retry-budget", 0, "link timeouts/reconnects before the coordinator is declared lost (0 = transport default)")
	flag.Parse()

	if *coordinator == "" {
		log.Fatal("cbsw: -coordinator is required")
	}
	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// The model must be bit-identical to the coordinator's: the operator
	// digest is checked at registration, and each assignment's solve
	// fingerprint (operator + energy + options) is re-derived here before
	// the solve runs.
	st := buildSystem(*sys, *n, *m, *cells, *bnPairs, *seed)
	model, err := cbs.NewModel(st, cbs.GridConfig{Nx: *nxy, Ny: *nxy, Nz: *nz * *cells, Nf: *nf})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s: %s, %d atoms, N = %d grid points\n", *name, st.Name, st.NumAtoms(), model.N())

	cfg := cbs.FleetWorkerConfig{
		Addr:  *coordinator,
		Name:  *name,
		TCP:   comm.TCPOptions{IOTimeout: *ioTimeout, RetryBudget: *retryBudget},
		Sweep: cbs.SweepConfig{MaxAttempts: *retries},
		// The coordinator ships the physics options; the parallel layout
		// is this worker's own (it is scheduling, not identity, so the
		// per-assignment fingerprint check is unaffected).
		Parallel: cbs.Parallel{Top: *top, Mid: *mid, Ndm: *ndm},
		Chaos:    chaos.FromEnv(),
	}

	start := time.Now()
	err = model.ServeFleet(ctx, cfg)
	switch {
	case err == nil:
		fmt.Fprintf(os.Stderr, "%s: sweep complete after %s\n", *name, time.Since(start).Round(time.Millisecond))
	case errors.Is(err, context.Canceled):
		fmt.Fprintf(os.Stderr, "%s: interrupted\n", *name)
	default:
		log.Fatalf("%s: %v", *name, err)
	}
}

// buildSystem constructs the worker's structure (mirrors cmd/cbs).
func buildSystem(sys string, n, m, cells, bnPairs int, seed int64) *cbs.Structure {
	vac := units.AngstromToBohr(3.5)
	fail := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	switch sys {
	case "al":
		st, err := cbs.AlBulk100(cells)
		fail(err)
		return st
	case "cnt":
		st, err := cbs.CNT(n, m, vac)
		fail(err)
		if cells > 1 {
			st, err = cbs.Repeat(st, cells)
			fail(err)
		}
		return st
	case "bundle7":
		tube, err := cbs.CNT(n, m, vac)
		fail(err)
		st, err := cbs.Bundle7(tube, vac)
		fail(err)
		return st
	case "crystalline":
		tube, err := cbs.CNT(n, m, vac)
		fail(err)
		st, err := cbs.CrystallineBundle(tube)
		fail(err)
		return st
	case "bncnt":
		tube, err := cbs.CNT(n, m, vac)
		fail(err)
		super, err := cbs.Repeat(tube, cells)
		fail(err)
		st, err := cbs.BNDope(super, bnPairs, seed)
		fail(err)
		return st
	default:
		log.Fatalf("unknown system %q", sys)
		return nil
	}
}
