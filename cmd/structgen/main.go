// structgen regenerates the structural models of the paper's Fig. 7 (and
// the Sec. 5 bundles of Fig. 11) as extended-XYZ files: the pristine (8,0)
// CNT, BN-doped supercells (1024 and 10240 atoms), the 7-tube bundle and
// the crystalline bundle.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"cbs"
	"cbs/internal/lattice"
	"cbs/internal/units"
)

func main() {
	outDir := flag.String("out", "structures", "output directory")
	seed := flag.Int64("seed", 2017, "BN doping seed")
	large := flag.Bool("large", false, "also emit the 10240-atom model (large file)")
	flag.Parse()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	vac := units.AngstromToBohr(4)

	tube, err := cbs.CNT(8, 0, vac)
	if err != nil {
		log.Fatal(err)
	}
	emit(*outDir, "cnt_8_0_pristine.xyz", tube)

	// Fig. 7(b): BN-doped (8,0) CNT with 1024 atoms (32 cells); the paper
	// dopes randomly -- we use a fixed seed and 5% BN pairs.
	super32, err := cbs.Repeat(tube, 32)
	if err != nil {
		log.Fatal(err)
	}
	doped1024, err := cbs.BNDope(super32, 26, *seed) // ~5% of 1024 atoms
	if err != nil {
		log.Fatal(err)
	}
	emit(*outDir, "cnt_8_0_bn_1024.xyz", doped1024)

	if *large {
		super320, err := cbs.Repeat(tube, 320)
		if err != nil {
			log.Fatal(err)
		}
		doped10240, err := cbs.BNDope(super320, 256, *seed)
		if err != nil {
			log.Fatal(err)
		}
		emit(*outDir, "cnt_8_0_bn_10240.xyz", doped10240)
	}

	bundle, err := cbs.Bundle7(tube, vac)
	if err != nil {
		log.Fatal(err)
	}
	emit(*outDir, "cnt_8_0_bundle7.xyz", bundle)

	crys, err := cbs.CrystallineBundle(tube)
	if err != nil {
		log.Fatal(err)
	}
	emit(*outDir, "cnt_8_0_crystalline.xyz", crys)

	al, err := cbs.AlBulk100(1)
	if err != nil {
		log.Fatal(err)
	}
	emit(*outDir, "al100.xyz", al)
}

func emit(dir, name string, s *cbs.Structure) {
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := lattice.WriteXYZ(f, s); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %6d atoms  (%s)\n", name, s.NumAtoms(), s.Name)
}
