package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cbs"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestWriteDiagnosticsGolden pins the --diagnostics JSON schema with a
// synthetic, fully deterministic sweep report (no timings, no solver
// output), so a field rename or tag change in core.Diagnostics, the sweep
// statuses or the totals block is caught here before it breaks downstream
// consumers. Regenerate with -update.
func TestWriteDiagnosticsGolden(t *testing.T) {
	report := &diagReport{
		Energies: []diagEntry{
			{
				EnergyEV: -0.25,
				Status:   cbs.SweepDegraded,
				Attempts: 2,
				Escalations: []string{
					"tol 1.0e-10->1.0e-08 (no convergence)",
				},
				Diag: &cbs.Diagnostics{
					Nint:       8,
					Nrh:        4,
					Breakdowns: 3,
					Restarts:   4,
					Fallbacks:  1,
					DroppedPairs: []cbs.DroppedPair{
						{Point: 5, Col: 2},
					},
					RenormFactors:  []float64{1, 1, 8.0 / 7.0, 1},
					Degraded:       true,
					ResidualBudget: 4.2e-11,
					Points: []cbs.PointDiag{
						{ZRe: 0.9, ZIm: 0.45, Iterations: 120, Converged: 4, MaxResidual: 1.1e-11},
						{ZRe: 0.3, ZIm: 1.2, Iterations: 260, Converged: 3, StoppedEarly: 0,
							Breakdowns: 3, Restarts: 4, Fallbacks: 1, Dropped: 1, MaxResidual: 4.2e-11},
					},
				},
			},
			{
				EnergyEV: 0.5,
				Status:   cbs.SweepOK,
				Attempts: 1,
				Restored: true,
				Diag: &cbs.Diagnostics{
					Nint:           8,
					Nrh:            4,
					ResidualBudget: 9.9e-12,
					Points: []cbs.PointDiag{
						{ZRe: 0.9, ZIm: 0.45, Iterations: 96, Converged: 4, MaxResidual: 9.9e-12},
					},
				},
			},
			{
				EnergyEV: 0.75,
				Status:   cbs.SweepFailed,
				Attempts: 3,
				Error:    "sweep: energy 2 (E = 0.3 hartree) failed after 3 attempts: linsolve: no convergence within the iteration cap",
			},
		},
		Totals: diagTotals{
			OK:             1,
			Degraded:       1,
			Failed:         1,
			Restored:       1,
			Attempts:       6,
			Breakdowns:     3,
			Restarts:       4,
			Fallbacks:      1,
			DroppedPairs:   1,
			ResidualBudget: 4.2e-11,
		},
	}

	out := filepath.Join(t.TempDir(), "diag.json")
	if err := writeDiagnostics(out, report); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "diagnostics_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("diagnostics JSON drifted from the golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
