// cbs is the command-line driver: compute the complex band structure of a
// built-in system at one energy or over an energy window. Scans run on the
// durable sweep engine: every energy ends in a typed status, failed
// energies are retried with parameter escalation, and with -checkpoint set
// each completed energy is journaled so a killed scan resumes with -resume
// instead of re-solving. Ctrl-C flushes the journal and exits cleanly.
//
// Examples:
//
//	cbs -system al -e 0.0
//	cbs -system cnt -n 8 -m 0 -emin -1 -emax 1 -ne 20
//	cbs -system bundle7 -e 0.1 -top 2 -mid 4 -ndm 2
//	cbs -system al -scan -ne 50 -checkpoint scan.journal
//	cbs -system al -scan -ne 50 -checkpoint scan.journal -resume
//	cbs -system al -scan -ne 50 -fleet-listen :9740 -fleet-min-workers 3
//
// With -fleet-listen the scan is served to cbsw worker processes over TCP
// instead of solved locally: energies shard across the fleet, a worker
// that dies or partitions has its share re-dispatched to survivors, and
// the result is identical to the single-process sweep. Per-energy retries
// then live worker-side (cbsw -retries); -scan-workers is ignored.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"sync/atomic"

	"cbs"
	"cbs/internal/chaos"
	"cbs/internal/units"
)

func main() {
	sys := flag.String("system", "al", "system: al | cnt | bundle7 | crystalline | bncnt | tb-chain | tb-slab")
	n := flag.Int("n", 8, "CNT chiral index n")
	m := flag.Int("m", 0, "CNT chiral index m")
	cells := flag.Int("cells", 1, "cells stacked along z (supercell)")
	bnPairs := flag.Int("bn-pairs", 0, "BN dopant pairs (bncnt)")
	seed := flag.Int64("seed", 2017, "doping seed")

	nxy := flag.Int("nxy", 16, "transverse grid points")
	nz := flag.Int("nz", 10, "axial grid points per cell")
	nf := flag.Int("nf", 4, "finite-difference half-width")

	tbSites := flag.Int("tb-sites", 4, "tb-chain: sites per principal layer (supercell)")
	tbNx := flag.Int("tb-nx", 2, "tb-slab: transverse sites along x")
	tbNy := flag.Int("tb-ny", 2, "tb-slab: transverse sites along y")
	tbOnsite := flag.Float64("tb-onsite", 0, "tight-binding onsite energy eps (hartree)")
	tbHop := flag.Float64("tb-hop", -1, "tight-binding nearest-neighbor hopping t (hartree)")
	tbA := flag.Float64("tb-a", 1, "tight-binding lattice constant a (bohr)")

	transportFlag := flag.Bool("transport", false, "run the CBS->NEGF transport pipeline over the energy window: T(E) instead of complex bands")
	devCells := flag.Int("device-cells", 2, "transport: device length in principal layers")
	barrierCells := flag.Int("barrier-cells", 0, "transport: barrier thickness in device cells (centered)")
	barrierEV := flag.Float64("barrier", 0, "transport: diagonal barrier shift on the barrier cells (eV)")
	nBias := flag.Int("nbias", 0, "transport: Landauer I-V points over [0, bias-max] (0 = skip)")
	biasMax := flag.Float64("bias-max", 0.5, "transport: maximum bias (V = eV window around EF)")

	eFlag := flag.Float64("e", math.NaN(), "energy relative to EF (eV); NaN = scan")
	scanFlag := flag.Bool("scan", false, "scan the energy window (overrides -e)")
	emin := flag.Float64("emin", -1, "scan window start (eV, relative to EF)")
	emax := flag.Float64("emax", 1, "scan window end (eV)")
	nE := flag.Int("ne", 11, "scan points")

	checkpoint := flag.String("checkpoint", "", "journal completed energies to this file")
	resume := flag.Bool("resume", false, "resume from the -checkpoint journal (skip completed energies)")
	scanWorkers := flag.Int("scan-workers", 1, "concurrent energies in the sweep")
	retries := flag.Int("retries", 3, "failed solve attempts per energy before it is marked failed")

	fleetListen := flag.String("fleet-listen", "", "coordinate a distributed sweep: listen for cbsw workers on this address (e.g. :9740) and dispatch energies to them instead of solving locally")
	fleetMin := flag.Int("fleet-min-workers", 1, "hold the first dispatch until this many workers have registered")

	nint := flag.Int("nint", 32, "quadrature points per circle")
	nmm := flag.Int("nmm", 8, "moment blocks")
	nrh := flag.Int("nrh", 16, "right-hand sides")
	lmin := flag.Float64("lambda-min", 0.5, "annulus inner radius")
	top := flag.Int("top", 1, "top-layer workers (right-hand sides)")
	mid := flag.Int("mid", 1, "middle-layer workers (quadrature points)")
	ndm := flag.Int("ndm", 1, "bottom-layer domains")
	balance := flag.Bool("balance", false, "enable the majority early-stop rule")
	kernels := flag.String("kernels", "soa", "blocked kernel layout: soa | aos")
	precision := flag.String("precision", "complex128", "linear-solve arithmetic: complex128 | mixed (float32 inner BiCG + iterative refinement; requires -kernels soa and -ndm 1)")
	scfFlag := flag.Bool("scf", false, "run a small SCF before the CBS")
	diagPath := flag.String("diagnostics", "", "write per-energy solve diagnostics to this JSON file")
	timeout := flag.Duration("timeout", 0, "overall wall-clock budget (0 = none); expiry cancels like Ctrl-C")
	flag.Parse()

	// Ctrl-C cancels the contour solve promptly across all parallel layers
	// instead of abandoning in-flight workers.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// A wall-clock budget rides the same context: a checkpointed sweep that
	// overruns it is cut cleanly and resumes with -resume.
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var (
		model *cbs.Model
		err   error
	)
	switch *sys {
	case "tb-chain":
		model, err = cbs.NewTBChain(cbs.TBChainConfig{
			Sites: *tbSites, Onsite: *tbOnsite, Hopping: *tbHop, A: *tbA,
		})
	case "tb-slab":
		model, err = cbs.NewTBSlab(cbs.TBSlabConfig{
			Nx: *tbNx, Ny: *tbNy, Onsite: *tbOnsite, Hopping: *tbHop, A: *tbA,
		})
	default:
		st := buildSystem(*sys, *n, *m, *cells, *bnPairs, *seed)
		model, err = cbs.NewModel(st, cbs.GridConfig{Nx: *nxy, Ny: *nxy, Nz: *nz * *cells, Nf: *nf})
		if err == nil {
			fmt.Fprintf(os.Stderr, "%s: %d atoms\n", st.Name, st.NumAtoms())
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s: N = %d\n", model.OperatorDesc(), model.N())
	if *scfFlag {
		res, err := model.RunSCF(cbs.SCFOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "SCF: %d iterations, converged=%v, deltaV=%.2e\n",
			res.Iterations, res.Converged, res.DeltaV)
	}
	ef, err := model.FermiLevel(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "EF = %.4f hartree (%.3f eV)\n", ef, units.HartreeToEV(ef))

	opts := cbs.DefaultOptions()
	opts.Nint = *nint
	opts.Nmm = *nmm
	opts.Nrh = *nrh
	opts.LambdaMin = *lmin
	opts.LoadBalanceStop = *balance
	opts.Kernels = *kernels
	opts.Precision = *precision
	opts.Parallel = cbs.Parallel{Top: *top, Mid: *mid, Ndm: *ndm}
	// Fault injection is env-gated (CBS_CHAOS, CBS_CHAOS_SEED, ...): nil in
	// normal operation, a deterministic injector under the chaos-smoke CI.
	opts.Chaos = chaos.FromEnv()

	var energies []float64
	if !*scanFlag && !math.IsNaN(*eFlag) {
		energies = []float64{ef + units.EVToHartree(*eFlag)}
	} else {
		for i := 0; i < *nE; i++ {
			f := float64(i) / math.Max(1, float64(*nE-1))
			energies = append(energies, ef+units.EVToHartree(*emin+(*emax-*emin)*f))
		}
	}

	if *transportFlag {
		runTransport(ctx, model, energies, opts, ef, transportRun{
			devCells: *devCells, barrierCells: *barrierCells, barrierEV: *barrierEV,
			nBias: *nBias, biasMax: *biasMax,
			checkpoint: *checkpoint, resume: *resume,
			workers: *scanWorkers, retries: *retries,
		})
		return
	}

	// Every energy runs through the durable sweep engine: a single -e solve
	// is a one-element sweep, a scan gets per-energy retries, partial
	// results, and the checkpoint journal. With -fleet-listen the same
	// sweep is served to cbsw worker processes instead: energies shard
	// over the fleet, dead workers' shares re-dispatch to survivors, and
	// the checkpoint journal works identically.
	var (
		report   *cbs.SweepReport
		sweepErr error
	)
	if *fleetListen != "" {
		var solved atomic.Int64
		report, sweepErr = model.CoordinateFleet(ctx, energies, opts, cbs.FleetCoordinatorConfig{
			Addr: *fleetListen,
			OnListen: func(addr string) {
				fmt.Fprintf(os.Stderr, "fleet: coordinating on %s (dispatch begins at %d worker(s))\n", addr, *fleetMin)
			},
			MinWorkers:     *fleetMin,
			CheckpointPath: *checkpoint,
			Resume:         *resume,
			OnEnergy: func(er cbs.SweepEnergyResult) {
				fmt.Fprintf(os.Stderr, "fleet: %d/%d energies complete (E-EF = %+.3f eV: %s)\n",
					solved.Add(1), len(energies), units.HartreeToEV(er.Energy-ef), er.Status)
			},
		})
	} else {
		report, sweepErr = model.SweepCBS(ctx, energies, opts, cbs.SweepConfig{
			Workers:        *scanWorkers,
			MaxAttempts:    *retries,
			CheckpointPath: *checkpoint,
			Resume:         *resume,
			Chaos:          opts.Chaos,
		})
	}

	// Completed results are printed whatever happened to the rest of the
	// sweep: a canceled or partly failed scan still delivers every energy
	// it finished (and has journaled).
	a := model.CellLength()
	fmt.Printf("# E-EF(eV)\tRe(k)a/pi\tIm(k)a/pi\t|lambda|\tresidual\n")
	for _, er := range report.Results {
		eEV := units.HartreeToEV(er.Energy - ef)
		if er.Result != nil {
			for _, p := range er.Result.Pairs {
				fmt.Printf("%.6f\t%+.6f\t%+.6f\t%.6f\t%.2e\n",
					eEV, real(p.K)*a/math.Pi, imag(p.K)*a/math.Pi,
					math.Hypot(real(p.Lambda), imag(p.Lambda)), p.Residual)
			}
		}
		switch er.Status {
		case cbs.SweepOK, cbs.SweepDegraded:
			how := "solved"
			if er.FromJournal {
				how = "restored from journal"
			}
			fmt.Fprintf(os.Stderr, "E-EF = %+.3f eV: %s, %d states, %d attempts\n",
				eEV, how, len(er.Result.Pairs), er.Attempts)
			if er.Status == cbs.SweepDegraded {
				fmt.Fprintf(os.Stderr, "E-EF = %+.3f eV: DEGRADED (%d dropped; escalations: %v)\n",
					eEV, len(er.Result.Diagnostics.DroppedPairs), er.Escalations)
			}
		case cbs.SweepFailed:
			fmt.Fprintf(os.Stderr, "E-EF = %+.3f eV: FAILED after %d attempts: %v\n", eEV, er.Attempts, er.Err)
		case cbs.SweepSkipped:
			fmt.Fprintf(os.Stderr, "E-EF = %+.3f eV: skipped (sweep interrupted)\n", eEV)
		}
	}
	fmt.Fprintf(os.Stderr, "sweep: %d ok, %d degraded, %d failed, %d skipped (%d restored from journal)\n",
		report.OK, report.Degraded, report.Failed, report.Skipped, report.Restored)

	if *diagPath != "" {
		if err := writeDiagnostics(*diagPath, diagReportOf(report, ef)); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "diagnostics written to %s\n", *diagPath)
	}
	if sweepErr != nil {
		if ctx.Err() != nil {
			// SIGINT: the journal holds every completed energy; a -resume
			// rerun picks up from here. This is a clean exit.
			if *checkpoint != "" {
				fmt.Fprintf(os.Stderr, "interrupted: journal %s flushed, rerun with -resume to continue\n", *checkpoint)
			} else {
				fmt.Fprintln(os.Stderr, "interrupted")
			}
			return
		}
		log.Fatal(sweepErr)
	}
	if report.Failed > 0 {
		os.Exit(1)
	}
}

// diagEntry is one energy's outcome in the --diagnostics JSON export.
type diagEntry struct {
	EnergyEV    float64          `json:"energy_ev"`
	Status      cbs.SweepStatus  `json:"status"`
	Attempts    int              `json:"attempts,omitempty"`
	Restored    bool             `json:"restored,omitempty"`
	Escalations []string         `json:"escalations,omitempty"`
	Error       string           `json:"error,omitempty"`
	Diag        *cbs.Diagnostics `json:"diagnostics,omitempty"`
}

// diagTotals aggregates the sweep: status counts plus the recovery-ladder
// activity summed across every completed energy.
type diagTotals struct {
	OK             int     `json:"ok"`
	Degraded       int     `json:"degraded"`
	Failed         int     `json:"failed"`
	Skipped        int     `json:"skipped"`
	Restored       int     `json:"restored"`
	Attempts       int     `json:"attempts"`
	Breakdowns     int     `json:"breakdowns"`
	Restarts       int     `json:"restarts"`
	Fallbacks      int     `json:"fallbacks"`
	DroppedPairs   int     `json:"dropped_pairs"`
	ResidualBudget float64 `json:"residual_budget"` // worst across the sweep
}

// diagReport is the --diagnostics JSON document: per-energy rows plus
// sweep-wide totals.
type diagReport struct {
	Energies []diagEntry `json:"energies"`
	Totals   diagTotals  `json:"totals"`
}

// diagReportOf projects a sweep report into the JSON export.
func diagReportOf(report *cbs.SweepReport, ef float64) *diagReport {
	out := &diagReport{
		Totals: diagTotals{
			OK:       report.OK,
			Degraded: report.Degraded,
			Failed:   report.Failed,
			Skipped:  report.Skipped,
			Restored: report.Restored,
			Attempts: report.Attempts,
		},
	}
	for _, er := range report.Results {
		entry := diagEntry{
			EnergyEV:    units.HartreeToEV(er.Energy - ef),
			Status:      er.Status,
			Attempts:    er.Attempts,
			Restored:    er.FromJournal,
			Escalations: er.Escalations,
		}
		if er.Err != nil {
			entry.Error = er.Err.Error()
		}
		if er.Result != nil {
			d := er.Result.Diagnostics
			entry.Diag = &d
			out.Totals.Breakdowns += d.Breakdowns
			out.Totals.Restarts += d.Restarts
			out.Totals.Fallbacks += d.Fallbacks
			out.Totals.DroppedPairs += len(d.DroppedPairs)
			if d.ResidualBudget > out.Totals.ResidualBudget {
				out.Totals.ResidualBudget = d.ResidualBudget
			}
		}
		out.Energies = append(out.Energies, entry)
	}
	return out
}

// writeDiagnostics exports the sweep diagnostics as indented JSON.
func writeDiagnostics(path string, report *diagReport) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// transportRun carries the -transport flag group.
type transportRun struct {
	devCells, barrierCells int
	barrierEV              float64
	nBias                  int
	biasMax                float64
	checkpoint             string
	resume                 bool
	workers, retries       int
}

// runTransport drives the CBS -> NEGF pipeline over the energy window and
// prints T(E) (and, with -nbias, the Landauer I-V). The barrier is a
// diagonal shift on the centered -barrier-cells device cells; outside it
// the device is the pristine lead cell.
func runTransport(ctx context.Context, model *cbs.Model, energies []float64, opts cbs.Options, ef float64, run transportRun) {
	dev := cbs.TransportDevice{Cells: run.devCells}
	if run.barrierCells > 0 {
		if run.barrierCells > run.devCells {
			log.Fatalf("-barrier-cells %d exceeds -device-cells %d", run.barrierCells, run.devCells)
		}
		dev.Barrier = make([]float64, run.devCells)
		start := (run.devCells - run.barrierCells) / 2
		for i := 0; i < run.barrierCells; i++ {
			dev.Barrier[start+i] = units.EVToHartree(run.barrierEV)
		}
	}
	spec := cbs.TransportSpec{Energies: energies, Device: dev, Chaos: opts.Chaos}
	curve, err := model.TransportCBS(ctx, spec, opts, cbs.SweepConfig{
		Workers: run.workers, MaxAttempts: run.retries,
		CheckpointPath: run.checkpoint, Resume: run.resume,
		Chaos: opts.Chaos,
	})
	if err != nil {
		if ctx.Err() != nil && run.checkpoint != "" {
			fmt.Fprintf(os.Stderr, "interrupted: journal %s flushed, rerun with -resume to continue\n", run.checkpoint)
			return
		}
		log.Fatal(err)
	}
	failed := 0
	fmt.Printf("# E-EF(eV)\tT\tn_open\tbeta(1/bohr)\tstatus\n")
	for _, p := range curve.Points {
		fmt.Printf("%.6f\t%.6f\t%d\t%.6f\t%s\n",
			units.HartreeToEV(p.E-ef), p.T, p.NOpen, p.Beta, p.Status)
		if p.Status != cbs.TransportOK {
			failed++
			fmt.Fprintf(os.Stderr, "E-EF = %+.3f eV: FAILED: %s\n", units.HartreeToEV(p.E-ef), p.Err)
		}
	}
	if run.nBias > 0 {
		biases := make([]float64, run.nBias)
		for i := range biases {
			f := float64(i) / math.Max(1, float64(run.nBias-1))
			biases[i] = units.EVToHartree(run.biasMax * f)
		}
		iv := cbs.LandauerIV(curve.OK(), cbs.BiasSpec{EFermi: ef, Biases: biases})
		fmt.Printf("# V(V)\tI(G0*hartree)\n")
		for _, p := range iv {
			fmt.Printf("%.6f\t%.8g\n", units.HartreeToEV(p.V), p.I)
		}
	}
	fmt.Fprintf(os.Stderr, "transport: %d/%d energies ok\n", len(curve.Points)-failed, len(curve.Points))
	if failed > 0 {
		os.Exit(1)
	}
}

func buildSystem(sys string, n, m, cells, bnPairs int, seed int64) *cbs.Structure {
	vac := units.AngstromToBohr(3.5)
	fail := func(err error) *cbs.Structure {
		if err != nil {
			log.Fatal(err)
		}
		return nil
	}
	switch sys {
	case "al":
		st, err := cbs.AlBulk100(cells)
		fail(err)
		return st
	case "cnt":
		st, err := cbs.CNT(n, m, vac)
		fail(err)
		if cells > 1 {
			st, err = cbs.Repeat(st, cells)
			fail(err)
		}
		return st
	case "bundle7":
		tube, err := cbs.CNT(n, m, vac)
		fail(err)
		st, err := cbs.Bundle7(tube, vac)
		fail(err)
		return st
	case "crystalline":
		tube, err := cbs.CNT(n, m, vac)
		fail(err)
		st, err := cbs.CrystallineBundle(tube)
		fail(err)
		return st
	case "bncnt":
		tube, err := cbs.CNT(n, m, vac)
		fail(err)
		super, err := cbs.Repeat(tube, cells)
		fail(err)
		st, err := cbs.BNDope(super, bnPairs, seed)
		fail(err)
		return st
	default:
		log.Fatalf("unknown system %q", sys)
		return nil
	}
}
