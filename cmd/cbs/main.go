// cbs is the command-line driver: compute the complex band structure of a
// built-in system at one energy or over an energy window.
//
// Examples:
//
//	cbs -system al -e 0.0
//	cbs -system cnt -n 8 -m 0 -emin -1 -emax 1 -ne 20
//	cbs -system bundle7 -e 0.1 -top 2 -mid 4 -ndm 2
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"

	"cbs"
	"cbs/internal/chaos"
	"cbs/internal/units"
)

func main() {
	sys := flag.String("system", "al", "system: al | cnt | bundle7 | crystalline | bncnt")
	n := flag.Int("n", 8, "CNT chiral index n")
	m := flag.Int("m", 0, "CNT chiral index m")
	cells := flag.Int("cells", 1, "cells stacked along z (supercell)")
	bnPairs := flag.Int("bn-pairs", 0, "BN dopant pairs (bncnt)")
	seed := flag.Int64("seed", 2017, "doping seed")

	nxy := flag.Int("nxy", 16, "transverse grid points")
	nz := flag.Int("nz", 10, "axial grid points per cell")
	nf := flag.Int("nf", 4, "finite-difference half-width")

	eFlag := flag.Float64("e", math.NaN(), "energy relative to EF (eV); NaN = scan")
	emin := flag.Float64("emin", -1, "scan window start (eV, relative to EF)")
	emax := flag.Float64("emax", 1, "scan window end (eV)")
	nE := flag.Int("ne", 11, "scan points")

	nint := flag.Int("nint", 32, "quadrature points per circle")
	nmm := flag.Int("nmm", 8, "moment blocks")
	nrh := flag.Int("nrh", 16, "right-hand sides")
	lmin := flag.Float64("lambda-min", 0.5, "annulus inner radius")
	top := flag.Int("top", 1, "top-layer workers (right-hand sides)")
	mid := flag.Int("mid", 1, "middle-layer workers (quadrature points)")
	ndm := flag.Int("ndm", 1, "bottom-layer domains")
	balance := flag.Bool("balance", false, "enable the majority early-stop rule")
	scfFlag := flag.Bool("scf", false, "run a small SCF before the CBS")
	diagPath := flag.String("diagnostics", "", "write per-energy solve diagnostics to this JSON file")
	flag.Parse()

	// Ctrl-C cancels the contour solve promptly across all parallel layers
	// instead of abandoning in-flight workers.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	st := buildSystem(*sys, *n, *m, *cells, *bnPairs, *seed)
	model, err := cbs.NewModel(st, cbs.GridConfig{Nx: *nxy, Ny: *nxy, Nz: *nz * *cells, Nf: *nf})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s: %d atoms, N = %d grid points\n", st.Name, st.NumAtoms(), model.N())
	if *scfFlag {
		res, err := model.RunSCF(cbs.SCFOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "SCF: %d iterations, converged=%v, deltaV=%.2e\n",
			res.Iterations, res.Converged, res.DeltaV)
	}
	ef, err := model.FermiLevel(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "EF = %.4f hartree (%.3f eV)\n", ef, units.HartreeToEV(ef))

	opts := cbs.DefaultOptions()
	opts.Nint = *nint
	opts.Nmm = *nmm
	opts.Nrh = *nrh
	opts.LambdaMin = *lmin
	opts.LoadBalanceStop = *balance
	opts.Parallel = cbs.Parallel{Top: *top, Mid: *mid, Ndm: *ndm}
	// Fault injection is env-gated (CBS_CHAOS, CBS_CHAOS_SEED, ...): nil in
	// normal operation, a deterministic injector under the chaos-smoke CI.
	opts.Chaos = chaos.FromEnv()

	var energies []float64
	if !math.IsNaN(*eFlag) {
		energies = []float64{ef + units.EVToHartree(*eFlag)}
	} else {
		for i := 0; i < *nE; i++ {
			f := float64(i) / math.Max(1, float64(*nE-1))
			energies = append(energies, ef+units.EVToHartree(*emin+(*emax-*emin)*f))
		}
	}

	a := model.CellLength()
	var diags []diagEntry
	fmt.Printf("# E-EF(eV)\tRe(k)a/pi\tIm(k)a/pi\t|lambda|\tresidual\n")
	for _, e := range energies {
		res, err := model.SolveCBSContext(ctx, e, opts)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range res.Pairs {
			fmt.Printf("%.6f\t%+.6f\t%+.6f\t%.6f\t%.2e\n",
				units.HartreeToEV(e-ef),
				real(p.K)*a/math.Pi, imag(p.K)*a/math.Pi,
				math.Hypot(real(p.Lambda), imag(p.Lambda)), p.Residual)
		}
		fmt.Fprintf(os.Stderr, "E-EF = %+.3f eV: %d states, solve %v\n",
			units.HartreeToEV(e-ef), len(res.Pairs), res.Timings.SolveLinear.Round(1e6))
		if res.Diagnostics.Degraded {
			fmt.Fprintf(os.Stderr, "E-EF = %+.3f eV: DEGRADED, %d contributions dropped\n",
				units.HartreeToEV(e-ef), len(res.Diagnostics.DroppedPairs))
		}
		diags = append(diags, diagEntry{EnergyEV: units.HartreeToEV(e - ef), Diag: res.Diagnostics})
	}
	if *diagPath != "" {
		if err := writeDiagnostics(*diagPath, diags); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "diagnostics written to %s\n", *diagPath)
	}
}

// diagEntry is one energy's solve health in the --diagnostics JSON export.
type diagEntry struct {
	EnergyEV float64         `json:"energy_ev"`
	Diag     cbs.Diagnostics `json:"diagnostics"`
}

// writeDiagnostics exports the per-energy solve diagnostics as indented
// JSON, one array entry per energy.
func writeDiagnostics(path string, entries []diagEntry) error {
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func buildSystem(sys string, n, m, cells, bnPairs int, seed int64) *cbs.Structure {
	vac := units.AngstromToBohr(3.5)
	fail := func(err error) *cbs.Structure {
		if err != nil {
			log.Fatal(err)
		}
		return nil
	}
	switch sys {
	case "al":
		st, err := cbs.AlBulk100(cells)
		fail(err)
		return st
	case "cnt":
		st, err := cbs.CNT(n, m, vac)
		fail(err)
		if cells > 1 {
			st, err = cbs.Repeat(st, cells)
			fail(err)
		}
		return st
	case "bundle7":
		tube, err := cbs.CNT(n, m, vac)
		fail(err)
		st, err := cbs.Bundle7(tube, vac)
		fail(err)
		return st
	case "crystalline":
		tube, err := cbs.CNT(n, m, vac)
		fail(err)
		st, err := cbs.CrystallineBundle(tube)
		fail(err)
		return st
	case "bncnt":
		tube, err := cbs.CNT(n, m, vac)
		fail(err)
		super, err := cbs.Repeat(tube, cells)
		fail(err)
		st, err := cbs.BNDope(super, bnPairs, seed)
		fail(err)
		return st
	default:
		log.Fatalf("unknown system %q", sys)
		return nil
	}
}
