// backend_isolation_test.go pins the identity boundary between operator
// backends: FD-grid and tight-binding models must never share a
// fingerprint — and therefore never share result-cache entries or resume
// each other's sweep journals. The descriptor byte-pins are load-bearing
// the same way the fingerprint goldens are: existing TB journals embed
// them.
package cbs_test

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"cbs"
	"cbs/internal/sweep"

	"context"
)

// tbChain4 is the canonical test lead: 4 sites, eps=0, t=-1, a=4 bohr.
func tbChain4(t *testing.T) *cbs.Model {
	t.Helper()
	m, err := cbs.NewTBChain(cbs.TBChainConfig{Sites: 4, Onsite: 0, Hopping: -1, A: 4})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestTBDescriptorGoldens byte-pins the tight-binding operator
// descriptors. A change orphans every deployed TB journal and job log —
// if the descriptor material must change, treat it like a fingerprint
// domain bump.
func TestTBDescriptorGoldens(t *testing.T) {
	chain := tbChain4(t)
	if got, want := chain.OperatorDesc(), "tb-chain|sites=4|eps=0|t=-1|a=4"; got != want {
		t.Errorf("chain descriptor %q, want %q (STABILITY BREAK)", got, want)
	}
	slab, err := cbs.NewTBSlab(cbs.TBSlabConfig{Nx: 2, Ny: 2, Onsite: 0, Hopping: -1, A: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := slab.OperatorDesc(), "tb-slab|nx=2|ny=2|eps=0|t=-1|a=1"; got != want {
		t.Errorf("slab descriptor %q, want %q (STABILITY BREAK)", got, want)
	}

	opts := cbs.DefaultOptions()
	goldens := []struct {
		name string
		got  string
		want string
	}{
		{"chain solve", chain.SolveFingerprint(0.5, opts), "ef2302494a8c9867"},
		{"slab solve", slab.SolveFingerprint(0.5, opts), "a90d608d6bcf7b0d"},
		{"chain transport", chain.TransportFingerprint(cbs.TransportSpec{
			Energies: []float64{-0.25, 0, 0.25},
			Device:   cbs.TransportDevice{Cells: 3},
		}, opts), "6f9c3f50d5d907d8"},
		{"chain transport with barrier", chain.TransportFingerprint(cbs.TransportSpec{
			Energies: []float64{-0.25, 0, 0.25},
			Device:   cbs.TransportDevice{Cells: 3, Barrier: []float64{0, 1.5, 0}},
		}, opts), "f60c97d04b19e90c"},
	}
	for _, g := range goldens {
		if g.got != g.want {
			t.Errorf("%s fingerprint %s, want %s (STABILITY BREAK: existing journals will refuse to resume)", g.name, g.got, g.want)
		}
	}
}

// TestBackendFingerprintsDisjoint: the same (energy, options) on different
// backends must produce different fingerprints — backends may never share
// cache or journal identity. The "tb-" descriptor prefix guarantees this
// against every FD-grid descriptor (which always starts with the
// structure name and a "|grid=" field).
func TestBackendFingerprintsDisjoint(t *testing.T) {
	chain := tbChain4(t)
	slab, err := cbs.NewTBSlab(cbs.TBSlabConfig{Nx: 2, Ny: 2, Onsite: 0, Hopping: -1, A: 4})
	if err != nil {
		t.Fatal(err)
	}
	st, err := cbs.AlBulk100(1)
	if err != nil {
		t.Fatal(err)
	}
	fd, err := cbs.NewModel(st, cbs.GridConfig{Nx: 6, Ny: 6, Nz: 8, Nf: 4})
	if err != nil {
		t.Fatal(err)
	}

	if !strings.HasPrefix(chain.OperatorDesc(), "tb-") || !strings.HasPrefix(slab.OperatorDesc(), "tb-") {
		t.Fatalf("tb descriptors lost their namespace prefix: %q, %q", chain.OperatorDesc(), slab.OperatorDesc())
	}
	if strings.HasPrefix(fd.OperatorDesc(), "tb-") {
		t.Fatalf("FD descriptor entered the tb namespace: %q", fd.OperatorDesc())
	}

	opts := cbs.DefaultOptions()
	es := []float64{-0.1, 0.3}
	fps := map[string]string{
		fd.SweepFingerprint(es, opts):    "fd",
		chain.SweepFingerprint(es, opts): "tb-chain",
		slab.SweepFingerprint(es, opts):  "tb-slab",
	}
	if len(fps) != 3 {
		t.Fatalf("backend fingerprints collided: %v", fps)
	}
}

// TestTBJournalRefusesFDResume: a checkpoint journal written by a
// tight-binding sweep is refused — typed, before any solve — when an
// FD-grid model tries to resume it, and vice versa. This is the
// enforcement half of the descriptor disjointness above.
func TestTBJournalRefusesFDResume(t *testing.T) {
	chain := tbChain4(t)
	opts := cbs.DefaultOptions()
	opts.Nrh, opts.Nmm = 2, 2

	path := filepath.Join(t.TempDir(), "tb.journal")
	es := []float64{0.5}
	rep, err := chain.SweepCBS(context.Background(), es, opts, cbs.SweepConfig{CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 1 {
		t.Fatalf("TB sweep: %d ok, want 1", rep.OK)
	}

	st, err := cbs.AlBulk100(1)
	if err != nil {
		t.Fatal(err)
	}
	fd, err := cbs.NewModel(st, cbs.GridConfig{Nx: 6, Ny: 6, Nz: 8, Nf: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The refusal happens at journal open — the FD model never solves.
	_, err = fd.SweepCBS(context.Background(), es, opts, cbs.SweepConfig{
		CheckpointPath: path, Resume: true,
	})
	if !errors.Is(err, sweep.ErrFingerprintMismatch) {
		t.Fatalf("FD resume of TB journal: err = %v, want ErrFingerprintMismatch", err)
	}

	// And the TB model itself resumes its own journal cleanly (restored,
	// no second solve).
	rep, err = chain.SweepCBS(context.Background(), es, opts, cbs.SweepConfig{
		CheckpointPath: path, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restored != 1 {
		t.Fatalf("TB self-resume restored %d, want 1", rep.Restored)
	}
}
