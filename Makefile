GO ?= go
CBSCHECK := bin/cbscheck

.PHONY: all build test race lint cbscheck fuzz-smoke chaos-smoke sweep-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# cbscheck is the repo's custom vettool (see DESIGN.md §7); go vet rebuilds
# nothing itself, so the binary is built explicitly first.
cbscheck:
	$(GO) build -o $(CBSCHECK) ./cmd/cbscheck

lint: cbscheck
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "unformatted files:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...
	$(GO) vet -vettool=$(abspath $(CBSCHECK)) ./...

# chaos-smoke drives the resilience tests under the env-gated fault
# injector (internal/chaos) across a small deterministic seed matrix;
# -count=2 defeats the test cache so every seed actually runs.
chaos-smoke:
	for seed in 1 2 3; do \
		CBS_CHAOS=1 CBS_CHAOS_SEED=$$seed \
		$(GO) test -count=2 ./internal/linsolve ./internal/core || exit 1; \
	done

# sweep-smoke drives the durable-sweep engine (checkpoint journal, retry
# escalation, kill-and-resume) under sweep-level fault injection: per-energy
# hard faults, checkpoint write faults, and torn journal records.
sweep-smoke:
	for seed in 1 2 3; do \
		CBS_CHAOS=1 CBS_CHAOS_SEED=$$seed \
		CBS_CHAOS_ENERGY=0.2 CBS_CHAOS_CKPT=0.1 CBS_CHAOS_TORN=0.1 \
		$(GO) test -count=2 ./internal/sweep ./internal/chaos || exit 1; \
	done

fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzCSRBuild -fuzztime=30s ./internal/sparse
	$(GO) test -run=NONE -fuzz=FuzzLUSolve -fuzztime=30s ./internal/zlinalg
