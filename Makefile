GO ?= go
CBSCHECK := bin/cbscheck

.PHONY: all build test race lint cbscheck fuzz-smoke chaos-smoke sweep-smoke serve-smoke serve-chaos net-smoke net-chaos negf-smoke bench bench-smoke fleet-bench negf-bench

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# cbscheck is the repo's custom vettool (see DESIGN.md §7); go vet rebuilds
# nothing itself, so the binary is built explicitly first.
cbscheck:
	$(GO) build -o $(CBSCHECK) ./cmd/cbscheck

lint: cbscheck
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "unformatted files:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...
	$(GO) vet -vettool=$(abspath $(CBSCHECK)) \
		-allowlist=$(abspath .cbscheck-allowlist) ./...
	$(GO) vet -vettool=$(abspath $(CBSCHECK)) \
		-allowlist=$(abspath .cbscheck-allowlist) -tests ./...

# chaos-smoke drives the resilience tests under the env-gated fault
# injector (internal/chaos) across a small deterministic seed matrix;
# -count=2 defeats the test cache so every seed actually runs.
chaos-smoke:
	for seed in 1 2 3; do \
		CBS_CHAOS=1 CBS_CHAOS_SEED=$$seed \
		$(GO) test -count=2 ./internal/linsolve ./internal/core || exit 1; \
	done

# sweep-smoke drives the durable-sweep engine (checkpoint journal, retry
# escalation, kill-and-resume) under sweep-level fault injection: per-energy
# hard faults, checkpoint write faults, torn journal records, plus the
# serving layer's job-pickup and cache forced-miss sites.
sweep-smoke:
	for seed in 1 2 3; do \
		CBS_CHAOS=1 CBS_CHAOS_SEED=$$seed \
		CBS_CHAOS_ENERGY=0.2 CBS_CHAOS_CKPT=0.1 CBS_CHAOS_TORN=0.1 \
		CBS_CHAOS_JOB=0.2 CBS_CHAOS_CACHE=0.2 \
		CBS_CHAOS_JOBLOG=0.2 CBS_CHAOS_ADOPT=0.2 \
		$(GO) test -count=2 ./internal/sweep ./internal/chaos \
			./internal/jobs ./internal/rescache || exit 1; \
	done

# serve-chaos is the crash-safety matrix: the kill-and-restart acceptance
# test and the job-store / SSE / fairness suites under -race, with the
# job-log and re-adoption fault sites (CBS_CHAOS_JOBLOG, CBS_CHAOS_ADOPT)
# armed across deterministic seeds. The suites arm explicit per-site rates
# in-test and read the seed from CBS_CHAOS_SEED, so each matrix entry
# faults a different subset of appends and adoptions; -count=2 defeats the
# test cache.
serve-chaos:
	for seed in 1 2 3; do \
		CBS_CHAOS=1 CBS_CHAOS_SEED=$$seed \
		CBS_CHAOS_JOBLOG=0.3 CBS_CHAOS_ADOPT=1 \
		$(GO) test -race -count=2 ./internal/jobs ./cmd/cbsd || exit 1; \
	done

# serve-smoke stands a real cbsd (random port, real Al(100) model on a
# small grid), POSTs a solve, polls it to completion, re-POSTs it to prove
# the cache hit, and diffs the physics against a golden file. Regenerate
# the golden with: go test -tags servesmoke ./cmd/cbsd -update
serve-smoke:
	$(GO) test -count=1 -tags servesmoke -run TestServeSmoke ./cmd/cbsd

# net-smoke exercises the transport stack end to end under -race: wire
# framing, the reliable link layer (reconnect, backoff, NAK retransmit),
# channel/TCP parity in dist, and the fleet suite — including the real
# SIGKILL multi-process kill-and-reshard acceptance test.
net-smoke:
	$(GO) test -race -count=1 ./internal/wire ./internal/comm ./internal/dist ./internal/fleet

# net-chaos is the network-fault matrix: the fleet kill-and-reshard
# acceptance and the comm/dist suites with the net.* chaos sites (drop,
# delay, reorder, dup, partition, conn) armed across deterministic seeds.
# The suites arm explicit per-site rates in-test and read the seed from
# CBS_CHAOS_SEED, so each matrix entry faults a different pattern of
# writes and dials; -count=2 defeats the test cache.
net-chaos:
	for seed in 1 2 3; do \
		CBS_CHAOS=1 CBS_CHAOS_SEED=$$seed \
		$(GO) test -race -count=2 ./internal/comm ./internal/fleet || exit 1; \
	done

# negf-smoke is the transport subsystem's acceptance gate: the NEGF and
# tight-binding suites plus the end-to-end /v1/transport goldens (quantized
# plateaus, barrier tunneling, cache hit on resubmission, restart resume)
# and the backend-isolation pins, all under -race; then the negf.selfenergy
# chaos site across a deterministic seed matrix. The chaos suite arms the
# explicit rate in-test and derives its injector seed from CBS_CHAOS_SEED,
# so each entry faults a different subset of energies; -count=2 defeats
# the test cache.
negf-smoke:
	$(GO) test -race -count=1 ./internal/negf ./internal/tb
	$(GO) test -race -count=1 -run 'TestTransport' ./cmd/cbsd
	$(GO) test -race -count=1 -run 'TestTB|TestBackend' .
	for seed in 1 2 3; do \
		CBS_CHAOS=1 CBS_CHAOS_SEED=$$seed CBS_CHAOS_NEGF=0.5 \
		$(GO) test -count=2 -run TestTransportChaosMatrix ./internal/negf || exit 1; \
	done

fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzCSRBuild -fuzztime=30s ./internal/sparse
	$(GO) test -run=NONE -fuzz=FuzzLUSolve -fuzztime=30s ./internal/zlinalg

# bench reruns the tracked Fig. 4a-style benchmark trio — {AoS, SoA,
# SoA+mixed} over the blocked stencil and a full contour solve — at the
# recorded size and rewrites the current PR's snapshot at the repo root
# (schema cbs-bench/v1; BENCH_PR6.json started the trajectory, BENCH_PR8.json
# is the latest point). The 1.5x floor is the acceptance bar for the SoA
# stencil against the in-run AoS baseline.
bench:
	$(GO) run ./cmd/serialperf -bench-json BENCH_PR8.json -bench-al-n 10 -assert-speedup 1.5

# bench-smoke is the CI gate: a reduced-size run of the same trio that must
# keep the SoA stencil at least on par with AoS (catching kernel-dispatch
# regressions without the noise sensitivity of the full bar), plus a schema
# check of the committed snapshot.
bench-smoke:
	$(GO) run ./cmd/serialperf -bench-json /tmp/cbs_bench_smoke.json -bench-al-n 6 -assert-speedup 1.0
	$(GO) run ./cmd/serialperf -bench-verify BENCH_PR6.json
	$(GO) run ./cmd/serialperf -bench-verify BENCH_PR8.json
	$(GO) run ./cmd/fleetbench -verify BENCH_PR9.json
	$(GO) run ./cmd/negfbench -ne 16
	$(GO) run ./cmd/negfbench -verify BENCH_PR10.json

# fleet-bench reruns the tracked distributed-sweep benchmark — the same
# small Al(100) sweep single-process and over 2/4 local cbsw worker
# processes via loopback TCP, with bit-identity enforced against the
# single-process run — and rewrites the current PR's snapshot (schema
# cbs-fleetbench/v1, BENCH_PR9.json).
fleet-bench:
	$(GO) build -o bin/cbsw ./cmd/cbsw
	$(GO) run ./cmd/fleetbench -json BENCH_PR9.json

# negf-bench reruns the tracked CBS→NEGF transport benchmark — the same
# in-band tight-binding grid as a plain CBS sweep and through the full
# transmission pipeline, with the quantization gate enforced — and
# rewrites the current PR's snapshot (schema cbs-negfbench/v1,
# BENCH_PR10.json).
negf-bench:
	$(GO) run ./cmd/negfbench -json BENCH_PR10.json
