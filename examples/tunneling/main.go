// Tunneling analysis: the application the paper's introduction motivates.
// The evanescent complex bands of a semiconductor govern how electrons
// tunnel through it; this example scans the CBS of a (8,0) carbon nanotube
// across its band gap, extracts the decay-constant profile beta(E) (the
// complex-band loop), locates the branch point, and prints WKB transmission
// estimates for barriers of several lengths.
package main

import (
	"flag"
	"fmt"
	"log"

	"cbs"
	"cbs/internal/units"
)

func main() {
	nE := flag.Int("ne", 11, "energies across the gap window")
	window := flag.Float64("window", 0.8, "energy half-window around EF (eV)")
	nxy := flag.Int("nxy", 16, "transverse grid points")
	flag.Parse()

	tube, err := cbs.CNT(8, 0, units.AngstromToBohr(3.5))
	if err != nil {
		log.Fatal(err)
	}
	model, err := cbs.NewModel(tube, cbs.GridConfig{Nx: *nxy, Ny: *nxy, Nz: 8, Nf: 4})
	if err != nil {
		log.Fatal(err)
	}
	ef, err := model.FermiLevel(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: N = %d, EF = %.4f hartree\n", tube.Name, model.N(), ef)

	opts := cbs.DefaultOptions()
	opts.Nint = 16
	opts.Nmm = 6
	opts.Nrh = 8
	var energies []float64
	for i := 0; i < *nE; i++ {
		f := float64(i) / float64(*nE-1)
		energies = append(energies, ef+units.EVToHartree(-*window+2**window*f))
	}
	results, err := model.ScanCBS(energies, opts)
	if err != nil {
		log.Fatal(err)
	}

	profile := cbs.DecayProfile(results)
	fmt.Printf("\n%-12s %-10s %-14s %s\n", "E-EF (eV)", "#open", "beta (1/A)", "T(d=10A)")
	d10 := units.AngstromToBohr(10)
	for _, p := range profile {
		beta := p.Beta / units.AngstromPerBohr // 1/bohr -> 1/angstrom... (1/bohr)*(bohr/A)
		fmt.Printf("%-12.3f %-10d %-14.4f %.3e\n",
			units.HartreeToEV(p.E-ef), p.NPropagate, beta, cbs.Transmission(p, d10))
	}
	if e, b, ok := cbs.ComplexBandGap(profile); ok {
		fmt.Printf("\ncomplex-band loop peak: beta = %.4f 1/A at E-EF = %.3f eV\n",
			b/units.AngstromPerBohr, units.HartreeToEV(e-ef))
	}
	for _, bp := range cbs.BranchPoints(profile) {
		fmt.Printf("branch point near E-EF = %.3f eV\n", units.HartreeToEV(bp-ef))
	}
}
