// BN-doped carbon nanotube (paper Sec. 4.2, reduced scale): build a
// (8,0) CNT supercell, randomly substitute boron/nitrogen pairs, and
// compute the complex band structure at the Fermi energy with all three
// parallel layers engaged -- the workload of the paper's scalability
// study, here at laptop scale.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/cmplx"
	"runtime"
	"sort"

	"cbs"
	"cbs/internal/units"
)

func main() {
	cells := flag.Int("cells", 2, "number of (8,0) cells stacked along z")
	pairs := flag.Int("pairs", 2, "BN dopant pairs")
	seed := flag.Int64("seed", 12345, "doping seed")
	nxy := flag.Int("nxy", 18, "transverse grid points")
	nzPerCell := flag.Int("nz", 6, "grid planes per cell")
	flag.Parse()

	tube, err := cbs.CNT(8, 0, units.AngstromToBohr(3.5))
	if err != nil {
		log.Fatal(err)
	}
	super, err := cbs.Repeat(tube, *cells)
	if err != nil {
		log.Fatal(err)
	}
	doped, err := cbs.BNDope(super, *pairs, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d C, %d B, %d N atoms, cell %.2f angstrom\n",
		doped.Name, doped.CountSpecies("C"), doped.CountSpecies("B"),
		doped.CountSpecies("N"), units.BohrToAngstrom(doped.Lz))

	model, err := cbs.NewModel(doped, cbs.GridConfig{
		Nx: *nxy, Ny: *nxy, Nz: *nzPerCell * *cells, Nf: 4})
	if err != nil {
		log.Fatal(err)
	}
	ef, err := model.FermiLevel(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("N = %d grid points, EF = %.4f hartree\n", model.N(), ef)

	opts := cbs.DefaultOptions()
	opts.Nint = 16
	opts.Nmm = 6
	opts.Nrh = 8
	opts.LoadBalanceStop = true
	// Engage the hierarchy: top x mid roughly matching the host cores,
	// bottom layer over 2 domains.
	w := runtime.NumCPU()
	top := 2
	mid := w / 4
	if mid < 1 {
		mid = 1
	}
	opts.Parallel = cbs.Parallel{Top: top, Mid: mid, Ndm: 2}
	res, err := model.SolveCBS(ef, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Decay lengths of the evanescent states: the dopant-induced gap
	// states control transport through the doped segment.
	type state struct {
		lambda complex128
		decayA float64 // decay length in angstrom
	}
	var states []state
	for _, p := range res.Pairs {
		kappa := imag(p.K)
		if kappa < 0 {
			kappa = -kappa
		}
		if kappa*model.CellLength() < 1e-4 {
			states = append(states, state{p.Lambda, 0}) // propagating
			continue
		}
		states = append(states, state{p.Lambda, units.BohrToAngstrom(1 / kappa)})
	}
	sort.Slice(states, func(i, j int) bool { return states[i].decayA > states[j].decayA })
	fmt.Printf("\n%-28s %-10s %s\n", "lambda", "|lambda|", "decay length (angstrom)")
	for _, s := range states {
		if s.decayA == 0 {
			fmt.Printf("%-28.5f %-10.6f propagating\n", s.lambda, cmplx.Abs(s.lambda))
		} else {
			fmt.Printf("%-28.5f %-10.6f %.2f\n", s.lambda, cmplx.Abs(s.lambda), s.decayA)
		}
	}
	fmt.Printf("\nsolve: %v (linear) + %v (extract), %d matvecs, %d KB bottom-layer traffic\n",
		res.Timings.SolveLinear.Round(1e6), res.Timings.Extract.Round(1e6),
		res.MatVecs, res.CommBytes/1024)
}
