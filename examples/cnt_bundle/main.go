// CNT bundle application (paper Sec. 5 / Fig. 11, reduced scale): compare
// the complex band structure of an isolated (8,0) carbon nanotube with the
// crystalline bundle. Bundling enhances the dispersion through inter-tube
// interaction and reshapes the evanescent loops around the Fermi energy --
// the effect the paper reports as invisible to conventional band
// structures.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/cmplx"

	"cbs"
	"cbs/internal/units"
)

func main() {
	nE := flag.Int("ne", 9, "energies across the scan window (paper: 200)")
	window := flag.Float64("window", 1.0, "half-width of the energy window around EF (eV)")
	nxy := flag.Int("nxy", 20, "transverse grid points")
	flag.Parse()

	tube, err := cbs.CNT(8, 0, units.AngstromToBohr(3.5))
	if err != nil {
		log.Fatal(err)
	}
	bundle, err := cbs.CrystallineBundle(tube)
	if err != nil {
		log.Fatal(err)
	}

	for _, sys := range []*cbs.Structure{tube, bundle} {
		fmt.Printf("==== %s (%d atoms) ====\n", sys.Name, sys.NumAtoms())
		model, err := cbs.NewModel(sys, cbs.GridConfig{Nx: *nxy, Ny: *nxy, Nz: 8, Nf: 4})
		if err != nil {
			log.Fatal(err)
		}
		ef, err := model.FermiLevel(3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("N = %d, EF = %.4f hartree\n", model.N(), ef)

		opts := cbs.DefaultOptions()
		opts.Nint = 16
		opts.Nmm = 6
		opts.Nrh = 8
		opts.Parallel = cbs.Parallel{Top: 2, Mid: 2}

		// Scan energies around EF and report the smallest decay constant
		// (the complex-band gap that controls tunneling) at each energy.
		fmt.Printf("%-12s %-12s %-14s %s\n", "E-EF (eV)", "#states", "min |Im k| (1/A)", "propagating?")
		a := model.CellLength()
		for i := 0; i < *nE; i++ {
			e := ef + units.EVToHartree(-*window+2**window*float64(i)/float64(*nE-1))
			res, err := model.SolveCBS(e, opts)
			if err != nil {
				log.Fatal(err)
			}
			minKappa := math.Inf(1)
			prop := false
			for _, p := range res.Pairs {
				if math.Abs(cmplx.Abs(p.Lambda)-1) < 1e-4 {
					prop = true
					continue
				}
				if kappa := math.Abs(imag(p.K)); kappa < minKappa {
					minKappa = kappa
				}
			}
			kappaA := minKappa / units.AngstromPerBohr // 1/bohr -> 1/angstrom
			_ = a
			if math.IsInf(minKappa, 1) {
				fmt.Printf("%-12.3f %-12d %-14s %v\n",
					units.HartreeToEV(e-ef), len(res.Pairs), "-", prop)
			} else {
				fmt.Printf("%-12.3f %-12d %-14.4f %v\n",
					units.HartreeToEV(e-ef), len(res.Pairs), kappaA, prop)
			}
		}
		fmt.Println()
	}
}
