// Quickstart: compute the complex band structure of bulk aluminum at the
// Fermi energy with the Sakurai-Sugiura method and print the complex wave
// vectors, separating propagating (|lambda| = 1) from evanescent states.
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"

	"cbs"
	"cbs/internal/units"
)

func main() {
	// 1. Build the structure: one conventional fcc Al(100) cell (4 atoms).
	st, err := cbs.AlBulk100(1)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Discretize on a real-space grid with the 9-point (Nf=4) stencil.
	model, err := cbs.NewModel(st, cbs.GridConfig{Nx: 10, Ny: 10, Nz: 10, Nf: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system: %s, N = %d grid points, a = %.3f angstrom\n",
		st.Name, model.N(), units.BohrToAngstrom(model.CellLength()))

	// 3. Locate the Fermi level from the conventional band structure.
	ef, err := model.FermiLevel(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fermi level: %.4f hartree (%.3f eV)\n", ef, units.HartreeToEV(ef))

	// 4. Solve the quadratic eigenvalue problem at E = EF for all states
	//    with 0.5 < |lambda| < 2 (the paper's parameters).
	opts := cbs.DefaultOptions()
	opts.Nrh = 8
	opts.Parallel = cbs.Parallel{Top: 2, Mid: 2, Ndm: 1}
	res, err := model.SolveCBS(ef, opts)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Report.
	a := model.CellLength()
	fmt.Printf("\n%-22s %-10s %-22s %s\n", "lambda", "|lambda|", "k*a/pi", "type")
	for _, p := range res.Pairs {
		ka := p.K * complex(a/math.Pi, 0)
		kind := "evanescent"
		// Propagating states sit on the unit circle to solver accuracy.
		if math.Abs(cmplx.Abs(p.Lambda)-1) < 1e-4 {
			kind = "propagating"
		}
		fmt.Printf("%9.5f%+9.5fi  %-10.6f %9.5f%+9.5fi  %s\n",
			real(p.Lambda), imag(p.Lambda), cmplx.Abs(p.Lambda),
			real(ka), imag(ka), kind)
	}
	fmt.Printf("\n%d states in the annulus; linear solves took %v, extraction %v\n",
		len(res.Pairs), res.Timings.SolveLinear.Round(1e6), res.Timings.Extract.Round(1e6))
}
