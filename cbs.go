// Package cbs computes complex band structures (CBS) of z-periodic
// materials from first principles on a real-space grid, reproducing
// Iwase, Futamura, Imakura, Sakurai and Ono, "Efficient and Scalable
// Calculation of Complex Band Structure using Sakurai-Sugiura Method"
// (SC'17, DOI 10.1145/3126908.3126942).
//
// The Kohn-Sham equation of one bulk unit cell is cast as the quadratic
// eigenvalue problem
//
//	[ -lambda^{-1} H- + (E - H0) - lambda H+ ] psi = 0,  lambda = e^{ika},
//
// and only the physically relevant solutions lambda_min < |lambda| <
// 1/lambda_min are computed with the Sakurai-Sugiura contour-integral
// method, using matrix-free BiCG solves (with the dual-system halving
// P(z)^dagger = P(1/conj z)) and three layers of hierarchical parallelism.
// The conventional transfer-matrix baseline (OBM) and the ordinary band
// structure are included for comparison and validation.
//
// # Quick start
//
//	st, _ := cbs.AlBulk100(1)
//	model, _ := cbs.NewModel(st, cbs.GridConfig{Nx: 12, Ny: 12, Nz: 12, Nf: 4})
//	ef, _ := model.FermiLevel(4)
//	res, _ := model.SolveCBS(ef, cbs.DefaultOptions())
//	for _, p := range res.Pairs {
//	    fmt.Println(p.Lambda, p.K)
//	}
//
// All internal computation is in Hartree atomic units; the units subpackage
// converts to eV and angstrom.
package cbs

import (
	"context"
	"fmt"

	"cbs/internal/bandstructure"
	"cbs/internal/core"
	"cbs/internal/fingerprint"
	"cbs/internal/fleet"
	"cbs/internal/hamiltonian"
	"cbs/internal/lattice"
	"cbs/internal/negf"
	"cbs/internal/obm"
	"cbs/internal/operator"
	"cbs/internal/qep"
	"cbs/internal/scf"
	"cbs/internal/sweep"
	"cbs/internal/tb"
	"cbs/internal/transport"
)

// Re-exported types: the public surface of the library.
type (
	// Structure is an orthorhombic unit cell with atoms (bohr), periodic
	// along z.
	Structure = lattice.Structure
	// Atom is one nucleus.
	Atom = lattice.Atom
	// GridConfig selects the real-space discretization (grid points and
	// finite-difference half-width; Nf=4 is the paper's 9-point stencil).
	GridConfig = hamiltonian.Config
	// Options are the Sakurai-Sugiura solver parameters (paper Sec. 4).
	Options = core.Options
	// Parallel configures the three hierarchy layers.
	Parallel = core.Parallel
	// Result is one CBS solve at a fixed energy.
	Result = core.Result
	// Eigenpair is one complex band solution.
	Eigenpair = core.Eigenpair
	// Diagnostics reports the health of one contour solve: recovery-ladder
	// activity, dropped contributions, and the residual budget.
	Diagnostics = core.Diagnostics
	// PointDiag is the per-quadrature-point slice of Diagnostics.
	PointDiag = core.PointDiag
	// DroppedPair is one (quadrature point, probe column) contribution
	// discarded by graceful degradation.
	DroppedPair = core.DroppedPair
	// SweepConfig parameterizes the durable energy-sweep engine: worker
	// count, per-energy retry/escalation budgets, and the checkpoint
	// journal (see internal/sweep).
	SweepConfig = sweep.Config
	// SweepReport is the full per-energy outcome of a durable sweep.
	SweepReport = sweep.Report
	// SweepEnergyResult is one energy's terminal state in a sweep.
	SweepEnergyResult = sweep.EnergyResult
	// SweepStatus is the typed per-energy status (OK, Degraded, Failed,
	// Skipped).
	SweepStatus = sweep.Status
	// ScanError wraps a scan failure with the offending energy.
	ScanError = core.ScanError
	// FleetCoordinatorConfig tunes the coordinator end of a distributed
	// multi-process sweep: listen address, worker admission, failure
	// detection, and the checkpoint journal (see internal/fleet).
	FleetCoordinatorConfig = fleet.CoordinatorConfig
	// FleetWorkerConfig tunes one fleet worker process: coordinator
	// address, stable worker name, and the per-energy retry ladder.
	FleetWorkerConfig = fleet.WorkerConfig
	// OBMOptions configures the transfer-matrix baseline.
	OBMOptions = obm.Options
	// OBMResult is the baseline's output.
	OBMResult = obm.Result
	// SCFOptions configures the optional self-consistency loop.
	SCFOptions = scf.Options
	// SCFResult is its outcome.
	SCFResult = scf.Result
	// OperatorBackend is the operator contract a CBS solve needs: the
	// cell-periodic block applies H0/H+/H- plus identity metadata (see
	// internal/operator). The FD-grid Hamiltonian and the tight-binding
	// backends both satisfy it.
	OperatorBackend = operator.Backend
	// TBChainConfig parameterizes the 1D nearest-neighbor tight-binding
	// chain backend (analytic dispersion E = eps + 2t cos ka).
	TBChainConfig = tb.ChainConfig
	// TBSlabConfig parameterizes the simple-cubic tight-binding slab
	// backend (Nx x Ny hard-wall transverse sites per principal layer).
	TBSlabConfig = tb.SlabConfig
	// TransportSpec describes one CBS->NEGF transport run: energy grid,
	// device, NEGF options.
	TransportSpec = negf.Spec
	// TransportDevice is the scattering region (principal-layer count and
	// optional per-cell barrier shifts).
	TransportDevice = negf.Device
	// TransportOptions tunes the NEGF post-processing (broadening eta,
	// propagating-channel tolerance).
	TransportOptions = negf.Options
	// TransportPoint is T(E) at one energy with channel diagnostics.
	TransportPoint = negf.Point
	// TransportCurve is a transmission sweep's outcome.
	TransportCurve = negf.Curve
	// BiasSpec parameterizes the Landauer current integration.
	BiasSpec = negf.BiasSpec
	// IVPoint is one point of the Landauer I-V characteristic.
	IVPoint = negf.IVPoint
	// DecayOptions tunes the decay-profile reduction (propagating-channel
	// tolerance).
	DecayOptions = transport.Options
)

// DefaultOptions returns the paper's parameter set (Nint=32, Nmm=8,
// Nrh=16, delta=1e-10, lambda_min=0.5, BiCG tolerance 1e-10).
func DefaultOptions() Options { return core.DefaultOptions() }

// DefaultOBMOptions returns the baseline's defaults.
func DefaultOBMOptions() OBMOptions { return obm.DefaultOptions() }

// Re-exported sweep statuses.
const (
	SweepOK       = sweep.StatusOK
	SweepDegraded = sweep.StatusDegraded
	SweepFailed   = sweep.StatusFailed
	SweepSkipped  = sweep.StatusSkipped
)

// Re-exported transport point statuses.
const (
	TransportOK     = negf.PointOK
	TransportFailed = negf.PointFailed
)

// Structure generators (see internal/lattice for details).

// AlBulk100 builds nz conventional cells of fcc aluminum stacked along
// <100> (4 atoms per cell).
func AlBulk100(nz int) (*Structure, error) { return lattice.AlBulk100(nz) }

// CNT builds a single-wall (n,m) carbon nanotube in a box with the given
// vacuum margin (bohr).
func CNT(n, m int, vacuum float64) (*Structure, error) { return lattice.CNT(n, m, vacuum) }

// Repeat stacks a structure nz times along z.
func Repeat(s *Structure, nz int) (*Structure, error) { return lattice.Repeat(s, nz) }

// BNDope substitutes nPairs boron/nitrogen pairs for random carbon atoms
// (deterministic in seed).
func BNDope(s *Structure, nPairs int, seed int64) (*Structure, error) {
	return lattice.BNDope(s, nPairs, seed)
}

// Bundle7 arranges seven tubes hexagonally (the paper's "7 bundle").
func Bundle7(tube *Structure, vacuum float64) (*Structure, error) {
	return lattice.Bundle7(tube, vacuum)
}

// CrystallineBundle builds the periodic triangular bundle (2 tubes per
// rectangular cell).
func CrystallineBundle(tube *Structure) (*Structure, error) {
	return lattice.CrystallineBundle(tube)
}

// Model is a discretized system ready for CBS, band-structure, transport
// and baseline calculations. B is the operator backend every solve goes
// through; Op is non-nil only for FD-grid models and gates the
// grid-specific methods (SCF, OBM, conventional bands, domain
// decomposition).
type Model struct {
	Op *hamiltonian.Operator
	B  operator.Backend
}

// NewModel discretizes the structure on the requested grid, building the
// local potential and Kleinman-Bylander projectors (the FD-grid backend).
func NewModel(st *Structure, cfg GridConfig) (*Model, error) {
	op, err := hamiltonian.Build(st, cfg)
	if err != nil {
		return nil, err
	}
	return &Model{Op: op, B: op}, nil
}

// NewTBChain builds a model on the 1D nearest-neighbor tight-binding
// backend: an analytically solvable lead whose complex bands satisfy
// lambda + 1/lambda = (E - eps)/t per primitive cell.
func NewTBChain(cfg TBChainConfig) (*Model, error) {
	b, err := tb.NewChain(cfg)
	if err != nil {
		return nil, err
	}
	return &Model{B: b}, nil
}

// NewTBSlab builds a model on the simple-cubic tight-binding slab backend:
// Nx x Ny decoupled transverse modes, each a cosine band.
func NewTBSlab(cfg TBSlabConfig) (*Model, error) {
	b, err := tb.NewSlab(cfg)
	if err != nil {
		return nil, err
	}
	return &Model{B: b}, nil
}

// Backend exposes the model's operator backend (for callers composing the
// lower-level pipelines, e.g. the serving layer's cached transport sweep).
func (m *Model) Backend() OperatorBackend { return m.B }

// errFDOnly is the typed refusal of a grid-specific method on a non-grid
// backend.
func (m *Model) errFDOnly(what string) error {
	return fmt.Errorf("%s requires the FD-grid backend (this model runs on %q)", what, m.B.Descriptor())
}

// N returns the Hamiltonian dimension (grid points or orbitals per unit
// cell).
func (m *Model) N() int { return m.B.N() }

// CellLength returns the 1D lattice constant a (bohr).
func (m *Model) CellLength() float64 { return m.B.CellLength() }

// FermiLevel estimates the Fermi energy (hartree): an nk-point band sum
// for FD-grid models, the analytic band center for tight-binding backends
// (exact at half filling for the particle-hole-symmetric chain/slab).
func (m *Model) FermiLevel(nk int) (float64, error) {
	if m.Op != nil {
		return bandstructure.FermiLevel(m.Op, nk)
	}
	if fg, ok := m.B.(interface{ FermiGuess() float64 }); ok {
		return fg.FermiGuess(), nil
	}
	return 0, m.errFDOnly("FermiLevel")
}

// Bands returns the conventional band structure: nk wave vectors in
// [0, pi/a] and the nbands lowest energies at each (hartree). Large cells
// with a band cap use the sparse (Chebyshev-filtered) eigensolver; small
// cells or nbands <= 0 (all bands) diagonalize densely.
func (m *Model) Bands(nk, nbands int) ([]float64, [][]float64, error) {
	if m.Op == nil {
		return nil, nil, m.errFDOnly("Bands")
	}
	ks := bandstructure.UniformK(m.Op, nk)
	if nbands > 0 && m.Op.N() > 1200 {
		bs, err := bandstructure.LowestBands(m.Op, ks, nbands)
		return ks, bs, err
	}
	bs, err := bandstructure.Bands(m.Op, ks, nbands)
	return ks, bs, err
}

// SolveCBS computes the complex band structure at energy e (hartree) with
// the Sakurai-Sugiura method.
func (m *Model) SolveCBS(e float64, opts Options) (*Result, error) {
	return core.Solve(qep.NewBackend(m.B, e), opts)
}

// SolveCBSContext is SolveCBS under a context: cancellation or a deadline
// stops the contour solve promptly across all parallel layers, and the
// returned error wraps ctx.Err().
func (m *Model) SolveCBSContext(ctx context.Context, e float64, opts Options) (*Result, error) {
	return core.SolveContext(ctx, qep.NewBackend(m.B, e), opts)
}

// ScanCBS runs SolveCBS over a list of energies (hartree). On failure the
// completed prefix is returned alongside a *ScanError naming the offending
// energy — callers should surface the partial results, not discard them.
// For restartable production sweeps use SweepCBS instead.
func (m *Model) ScanCBS(es []float64, opts Options) ([]*Result, error) {
	return core.EnergyScan(qep.NewBackend(m.B, 0), es, opts)
}

// ScanCBSParallel runs the energy scan with concurrent energies -- the
// outermost trivially-parallel level of the paper's application section.
// The first failure cancels the remaining queued and in-flight energies;
// completed results come back alongside the *ScanError (nil holes for
// energies that never finished).
func (m *Model) ScanCBSParallel(es []float64, opts Options, workers int) ([]*Result, error) {
	return core.EnergyScanParallel(qep.NewBackend(m.B, 0), es, opts, workers)
}

// OperatorDesc identifies this model's operator for the sweep journal
// fingerprint: for FD-grid models the structure, grid and cell length; for
// other backends their Descriptor. Backends keep descriptor namespaces
// disjoint (tight-binding descriptors carry a "tb-" prefix no structure
// name uses), so two different backends can never share cache entries or
// resume each other's journals.
func (m *Model) OperatorDesc() string { return m.B.Descriptor() }

// SolveFingerprint returns the identity key of one solve: the shared
// FNV-1a digest (internal/fingerprint) over this model's operator
// descriptor, the energy, and the result-affecting options. Two solves
// with equal fingerprints are the same computation — the key the serving
// layer's result cache and the sweep journal both use.
func (m *Model) SolveFingerprint(e float64, opts Options) string {
	return fingerprint.Solve(m.OperatorDesc(), e, opts)
}

// SweepFingerprint is SolveFingerprint for a whole energy list; it equals
// the fingerprint a checkpoint journal for this sweep carries in its
// header.
func (m *Model) SweepFingerprint(es []float64, opts Options) string {
	return fingerprint.Key(m.OperatorDesc(), es, opts)
}

// SweepCBS runs the durable energy sweep: every energy ends in a typed
// status (OK, Degraded, Failed) instead of the first failure sinking the
// scan, a bounded retry policy escalates solver parameters per failure
// class, and with cfg.CheckpointPath set each completed energy is journaled
// so a killed sweep resumes without re-solving. If cfg.OperatorDesc is
// empty it is filled from OperatorDesc. Cancellation checkpoints completed
// work before returning.
func (m *Model) SweepCBS(ctx context.Context, es []float64, opts Options, cfg SweepConfig) (*SweepReport, error) {
	if cfg.OperatorDesc == "" {
		cfg.OperatorDesc = m.OperatorDesc()
	}
	solve := func(ctx context.Context, e float64, o Options) (*Result, error) {
		return core.SolveContext(ctx, qep.NewBackend(m.B, e), o)
	}
	return sweep.Run(ctx, solve, es, opts, cfg)
}

// CoordinateFleet runs a durable sweep across OS processes: it listens on
// cfg.Addr, shards the energies over registered workers by rendezvous
// hash, re-dispatches the share of any worker that dies or partitions,
// and journals completed energies exactly like SweepCBS — the report is
// bit-identical to a single-process sweep of the same energies. If
// cfg.OperatorDesc is empty it is filled from OperatorDesc; workers whose
// operator digest differs are refused.
func (m *Model) CoordinateFleet(ctx context.Context, es []float64, opts Options, cfg FleetCoordinatorConfig) (*SweepReport, error) {
	if cfg.OperatorDesc == "" {
		cfg.OperatorDesc = m.OperatorDesc()
	}
	return fleet.Coordinate(ctx, es, opts, cfg)
}

// ServeFleet runs this model as a fleet worker: dial the coordinator at
// cfg.Addr, register under cfg.Name, and solve assigned energies until
// the sweep finishes (nil), the context dies, or the link fails typed.
// If cfg.OperatorDesc is empty it is filled from OperatorDesc — the
// coordinator verifies the digest before admitting the worker.
func (m *Model) ServeFleet(ctx context.Context, cfg FleetWorkerConfig) error {
	if cfg.OperatorDesc == "" {
		cfg.OperatorDesc = m.OperatorDesc()
	}
	solve := func(ctx context.Context, e float64, o Options) (*Result, error) {
		return core.SolveContext(ctx, qep.NewBackend(m.B, e), o)
	}
	return fleet.Work(ctx, solve, cfg)
}

// SolveOBM runs the transfer-matrix baseline at energy e (hartree).
// FD-grid only: the baseline slices the grid into principal layers.
func (m *Model) SolveOBM(e float64, opts OBMOptions) (*OBMResult, error) {
	if m.Op == nil {
		return nil, m.errFDOnly("SolveOBM")
	}
	return obm.Solve(m.Op, e, opts)
}

// RunSCF iterates the model's local potential to self-consistency (small
// FD-grid cells only; see the scf package).
func (m *Model) RunSCF(opts SCFOptions) (*SCFResult, error) {
	if m.Op == nil {
		return nil, m.errFDOnly("RunSCF")
	}
	return scf.Run(m.Op, opts)
}

// CBSMemoryBytes estimates the Sakurai-Sugiura solve's memory footprint.
func (m *Model) CBSMemoryBytes(opts Options) int64 {
	return core.MemoryEstimate(qep.NewBackend(m.B, 0), opts)
}

// OBMMemoryBytes estimates the baseline's memory footprint (FD-grid only;
// 0 for other backends).
func (m *Model) OBMMemoryBytes() int64 {
	if m.Op == nil {
		return 0
	}
	return obm.MemoryEstimate(m.Op)
}

// Transport post-processing (tunneling analysis of CBS scans).
type (
	// DecayPoint is the dominant tunneling decay constant at one energy.
	DecayPoint = transport.Point
)

// DecayProfile reduces a CBS energy scan to beta(E) = min |Im k|, the
// dominant tunneling decay constant (the complex-band loop of Fig. 11).
func DecayProfile(results []*Result) []DecayPoint {
	return transport.DecayProfile(results)
}

// DecayProfileWith is DecayProfile with an explicit propagating-channel
// tolerance; Beta reports the smallest evanescent decay even at energies
// where propagating channels coexist with evanescent ones.
func DecayProfileWith(results []*Result, opts DecayOptions) []DecayPoint {
	return transport.DecayProfileWith(results, opts)
}

// LandauerIV integrates a transmission curve's OK points into the
// spin-degenerate Landauer current at each bias (see internal/negf).
func LandauerIV(points []TransportPoint, bias BiasSpec) []IVPoint {
	return negf.LandauerIV(points, bias)
}

// TransportCBS runs the full CBS -> NEGF pipeline: a durable sweep solves
// spec.Energies, each completed energy is classified into lead channels,
// wave-matched into retarded self-energies, and traced into T(E) through
// spec.Device (Caroli/Fisher-Lee). Per-energy failures land in the point
// statuses; cfg works exactly as in SweepCBS (retries, checkpoint
// journal, resume).
func (m *Model) TransportCBS(ctx context.Context, spec TransportSpec, opts Options, cfg SweepConfig) (*TransportCurve, error) {
	if cfg.OperatorDesc == "" {
		cfg.OperatorDesc = m.OperatorDesc()
	}
	solve := func(ctx context.Context, e float64, o Options) (*Result, error) {
		return core.SolveContext(ctx, qep.NewBackend(m.B, e), o)
	}
	return negf.TransmissionSweep(ctx, m.B, solve, spec, opts, cfg)
}

// TransportFingerprint is the identity key of a transport run: the sweep
// fingerprint material plus the NEGF post-processing descriptor. The
// serving layer's /v1/transport cache and journals key on it.
func (m *Model) TransportFingerprint(spec TransportSpec, opts Options) string {
	return fingerprint.Transport(m.OperatorDesc(), spec.Energies, opts, spec.PostDesc())
}

// Transmission estimates the WKB tunneling transmission exp(-2*beta*d)
// through a barrier of the given thickness (bohr).
func Transmission(p DecayPoint, thickness float64) float64 {
	return transport.Transmission(p, thickness)
}

// ComplexBandGap locates the maximum of beta(E) inside the gap.
func ComplexBandGap(profile []DecayPoint) (eAt, betaMax float64, ok bool) {
	return transport.ComplexBandGap(profile)
}

// BranchPoints returns the energies where evanescent branches merge (the
// red dot of the paper's Fig. 11a).
func BranchPoints(profile []DecayPoint) []float64 {
	return transport.BranchPoints(profile)
}
