package cbs_test

import (
	"math"
	"math/cmplx"
	"testing"

	"cbs"
)

// TestPublicAPIPipeline exercises the documented quick-start flow end to
// end through the facade only.
func TestPublicAPIPipeline(t *testing.T) {
	st, err := cbs.AlBulk100(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumAtoms() != 4 {
		t.Fatalf("Al cell has %d atoms", st.NumAtoms())
	}
	model, err := cbs.NewModel(st, cbs.GridConfig{Nx: 6, Ny: 6, Nz: 8, Nf: 4})
	if err != nil {
		t.Fatal(err)
	}
	if model.N() != 6*6*8 {
		t.Fatalf("N = %d", model.N())
	}
	if model.CellLength() <= 0 {
		t.Fatal("cell length not positive")
	}
	ef, err := model.FermiLevel(3)
	if err != nil {
		t.Fatal(err)
	}
	ks, bands, err := model.Bands(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 3 || len(bands) != 3 || len(bands[0]) != 5 {
		t.Fatal("Bands shape wrong")
	}
	opts := cbs.DefaultOptions()
	opts.Nint = 8
	opts.Nmm = 4
	opts.Nrh = 6
	res, err := model.SolveCBS(ef, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Pairs {
		if p.Residual > opts.ResidualTol {
			t.Errorf("pair %v residual %g above filter", p.Lambda, p.Residual)
		}
		// K and Lambda must be consistent.
		a := model.CellLength()
		if d := cmplx.Abs(cmplx.Exp(complex(0, 1)*p.K*complex(a, 0)) - p.Lambda); d > 1e-10 {
			t.Errorf("K/Lambda inconsistent by %g", d)
		}
	}
	// Memory estimates: SS method must be far below the baseline.
	if model.CBSMemoryBytes(opts) >= model.OBMMemoryBytes() {
		t.Error("SS memory estimate not below OBM")
	}
}

func TestPublicAPIScan(t *testing.T) {
	st, err := cbs.AlBulk100(1)
	if err != nil {
		t.Fatal(err)
	}
	model, err := cbs.NewModel(st, cbs.GridConfig{Nx: 6, Ny: 6, Nz: 8, Nf: 4})
	if err != nil {
		t.Fatal(err)
	}
	opts := cbs.DefaultOptions()
	opts.Nint = 4
	opts.Nmm = 2
	opts.Nrh = 4
	rs, err := model.ScanCBS([]float64{0.0, 0.2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Energy != 0.0 || rs[1].Energy != 0.2 {
		t.Fatalf("scan results wrong: %d", len(rs))
	}
}

func TestPublicAPIStructures(t *testing.T) {
	tube, err := cbs.CNT(8, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if tube.NumAtoms() != 32 {
		t.Fatalf("(8,0) CNT has %d atoms", tube.NumAtoms())
	}
	super, err := cbs.Repeat(tube, 2)
	if err != nil {
		t.Fatal(err)
	}
	doped, err := cbs.BNDope(super, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if doped.CountSpecies("B") != 2 || doped.CountSpecies("N") != 2 {
		t.Fatal("doping counts wrong")
	}
	b7, err := cbs.Bundle7(tube, 6)
	if err != nil {
		t.Fatal(err)
	}
	if b7.NumAtoms() != 224 {
		t.Fatalf("bundle has %d atoms", b7.NumAtoms())
	}
	cr, err := cbs.CrystallineBundle(tube)
	if err != nil {
		t.Fatal(err)
	}
	if cr.NumAtoms() != 64 {
		t.Fatalf("crystalline bundle has %d atoms", cr.NumAtoms())
	}
}

func TestDefaultOptionsMatchPaper(t *testing.T) {
	o := cbs.DefaultOptions()
	if o.Nint != 32 || o.Nmm != 8 || o.Nrh != 16 {
		t.Errorf("defaults %d/%d/%d, paper uses 32/8/16", o.Nint, o.Nmm, o.Nrh)
	}
	if o.Delta != 1e-10 || o.LambdaMin != 0.5 || o.BiCGTol != 1e-10 {
		t.Error("tolerances differ from the paper's Sec. 4 settings")
	}
	ob := cbs.DefaultOBMOptions()
	if ob.Tol != 1e-10 || ob.LambdaMin != 0.5 {
		t.Error("OBM defaults differ from the paper")
	}
}

func TestSCFThroughFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("SCF is slow")
	}
	st, err := cbs.AlBulk100(1)
	if err != nil {
		t.Fatal(err)
	}
	model, err := cbs.NewModel(st, cbs.GridConfig{Nx: 8, Ny: 8, Nz: 8, Nf: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := model.RunSCF(cbs.SCFOptions{MaxIter: 12, Tol: 1e-2, EigTol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 1 {
		t.Error("SCF did not iterate")
	}
	if math.IsNaN(res.DeltaV) {
		t.Error("SCF deltaV is NaN")
	}
}
