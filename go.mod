module cbs

go 1.22
